"""``repro-characterize`` — run the pipeline on a dataset from the shell.

The operator-facing entry point: point it at telemetry (native CSV or
Backblaze drive-stats files) or let it simulate a fleet, and it runs the
full characterization pipeline, prints the taxonomy / signature /
prediction summaries and optionally writes the machine-readable JSON
report.

Examples::

   repro-characterize --simulate 4000 --seed 42
   repro-characterize --csv fleet.csv --json report.json
   repro-characterize --backblaze 'data_Q1_2015/*.csv' --model ST4000DM000
   repro-characterize --simulate 500 -v --trace trace.json --metrics metrics.json
   repro-characterize --csv fleet.csv --jobs 4 --cache-dir /tmp/repro-cache
   repro-characterize --csv dirty.csv --lenient --retries 2
   repro-characterize --simulate 2000 --inject-faults 'drop=0.1,nan=0.05,seed=7'
"""

from __future__ import annotations

import argparse
import glob
import sys
from pathlib import Path

from repro.core.pipeline import CharacterizationPipeline, CharacterizationReport
from repro.core.serialize import save_report_json
from repro.core.taxonomy import FailureType
from repro.data.backblaze import load_backblaze_csv
from repro.data.cache import DatasetCache
from repro.data.dataset import DiskDataset
from repro.data.loader import load_csv, load_csv_resilient
from repro.data.sanitize import SanitizationResult, sanitize_profiles
from repro.errors import ReproError
from repro.faults import inject_dataset, parse_chaos_spec
from repro.obs import logging as obs_logging
from repro.obs.export import render_prometheus
from repro.obs.observer import (
    NULL_OBSERVER,
    PipelineObserver,
    TelemetryObserver,
)
from repro.parallel import RetryPolicy
from repro.reporting.tables import ascii_table
from repro.serve.bundle import build_bundle, save_bundle
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-characterize`` argument grammar."""
    parser = argparse.ArgumentParser(
        prog="repro-characterize",
        description="Categorize disk failures and derive degradation "
                    "signatures from SMART telemetry.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--simulate", type=int, metavar="N_DRIVES",
                        help="simulate a fleet of this size")
    source.add_argument("--csv", metavar="PATH",
                        help="load a native-format CSV dataset")
    source.add_argument("--backblaze", metavar="GLOB",
                        help="load Backblaze drive-stats daily CSVs")
    parser.add_argument("--model", default=None,
                        help="drive-model filter for Backblaze input")
    parser.add_argument("--seed", type=int, default=42,
                        help="seed for simulation and the pipeline")
    parser.add_argument("--clusters", type=int, default=3,
                        help="failure-group count (0 = elbow selection)")
    parser.add_argument("--no-prediction", action="store_true",
                        help="skip the Table III predictors")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--export-model", metavar="PATH", default=None,
                        help="write a versioned serving bundle (trees, "
                             "taxonomy, normalization, monitor thresholds) "
                             "here for 'repro-serve'")
    performance = parser.add_argument_group("performance")
    performance.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="workers for per-drive stages "
                                  "(1 = serial, 0 = all CPUs); any value "
                                  "produces byte-identical reports")
    performance.add_argument("--no-cache", action="store_true",
                             help="skip the on-disk dataset cache")
    performance.add_argument("--cache-dir", metavar="PATH", default=None,
                             help="dataset cache directory (default: "
                                  "$REPRO_CACHE_DIR or ~/.cache/repro)")
    robustness = parser.add_argument_group("robustness")
    robustness.add_argument("--lenient", action="store_true",
                            help="quarantine bad rows/drives instead of "
                                 "aborting; adds a data_quality report "
                                 "section when anything was excluded")
    robustness.add_argument("--inject-faults", metavar="SPEC", default=None,
                            help="deterministically corrupt the loaded "
                                 "dataset first (chaos testing), e.g. "
                                 "'drop=0.1,nan=0.05,seed=7'; implies "
                                 "--lenient")
    robustness.add_argument("--retries", type=int, default=0, metavar="N",
                            help="retry rounds for crashed or hung "
                                 "parallel workers (default 0: fail fast); "
                                 "any value produces byte-identical "
                                 "reports")
    robustness.add_argument("--chunk-timeout", type=float, default=None,
                            metavar="S",
                            help="per-chunk worker deadline in seconds "
                                 "(requires --retries semantics: timed-out "
                                 "chunks are retried, then re-run serially)")
    telemetry = parser.add_argument_group("telemetry")
    telemetry.add_argument("-v", "--verbose", action="count", default=0,
                           help="log pipeline progress (-vv for debug)")
    telemetry.add_argument("--log-json", action="store_true",
                           help="emit log records as JSON lines")
    telemetry.add_argument("--trace", metavar="PATH", default=None,
                           help="write the stage span tree here as JSON")
    telemetry.add_argument("--metrics", metavar="PATH", default=None,
                           help="write the metrics snapshot here as JSON")
    telemetry.add_argument("--prom", metavar="PATH", default=None,
                           help="write the metrics here in Prometheus "
                                "text exposition format")
    return parser


def load_dataset(args: argparse.Namespace, observer: PipelineObserver,
                 ) -> tuple[DiskDataset, SanitizationResult | None]:
    """Load (and, in lenient mode, sanitize) the input dataset.

    Returns the dataset plus the
    :class:`~repro.data.sanitize.SanitizationResult` when the resilient
    ingest ran (``--lenient`` / ``--inject-faults``), else ``None``.
    """
    lenient = bool(getattr(args, "lenient", False)
                   or getattr(args, "inject_faults", None))
    if args.simulate is not None:
        fleet = simulate_fleet(FleetConfig(n_drives=args.simulate,
                                           seed=args.seed),
                               observer=observer,
                               n_jobs=getattr(args, "jobs", 1))
        return fleet.dataset, None
    if args.csv is not None:
        if lenient:
            return load_csv_resilient(args.csv, observer=observer)
        return load_csv(args.csv, observer=observer), None
    paths = sorted(glob.glob(args.backblaze))
    if not paths:
        raise ReproError(f"no files match {args.backblaze!r}")
    dataset = load_backblaze_csv(paths, model=args.model, observer=observer)
    if lenient:
        result = sanitize_profiles(dataset.profiles, observer=observer)
        return result.dataset, result
    return dataset, None


def _merge_quality(first: SanitizationResult | None,
                   second: SanitizationResult) -> SanitizationResult:
    """Fold an earlier sanitization pass into a later one (ingest
    quarantine happened before fault injection re-sanitized)."""
    if first is not None:
        second.samples = first.samples + second.samples
        second.drives = first.drives + second.drives
        for repair, count in first.repairs.items():
            second.repairs[repair] = second.repairs.get(repair, 0) + count
        second.n_input_drives = first.n_input_drives
    return second


def render_data_quality(quality: SanitizationResult) -> str:
    """One-line ingest summary for the console."""
    return (f"data quality: {quality.n_clean_drives} of "
            f"{quality.n_input_drives} drives usable, "
            f"{len(quality.drives)} drives and {len(quality.samples)} "
            f"samples quarantined, {sum(quality.repairs.values())} repairs")


def render_report(report: CharacterizationReport) -> str:
    """ASCII taxonomy/signature/prediction tables for the console."""
    sections = []
    taxonomy_rows = []
    for failure_type in FailureType:
        summary = report.group_summaries.get(failure_type)
        if summary is None:
            continue
        taxonomy_rows.append((
            f"Group {failure_type.paper_group_number}",
            failure_type.value,
            summary.n_drives,
            f"{summary.median_window:.0f} h",
            f"(t/d)^{summary.consensus_order} - 1",
            "/".join(summary.top_correlated),
        ))
    sections.append(ascii_table(
        ("group", "type", "drives", "median window", "signature",
         "dominant attrs"),
        taxonomy_rows,
        title="Failure taxonomy and degradation signatures",
    ))

    if report.predictions:
        prediction_rows = [
            (f"Group {t.paper_group_number}", p.window, f"{p.rmse:.3f}",
             f"{p.error_rate:.1%}")
            for t, p in report.predictions.items()
        ]
        sections.append(ascii_table(
            ("group", "d", "RMSE", "error rate"), prediction_rows,
            title="Degradation prediction quality",
        ))
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    """Entry point: any library or I/O failure exits 2 with one line."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def run(args: argparse.Namespace) -> int:
    """Execute one parsed invocation (telemetry configured first)."""
    obs_logging.configure(
        level=obs_logging.verbosity_to_level(args.verbose),
        json_mode=args.log_json,
    )
    collect_telemetry = bool(args.verbose or args.log_json
                             or args.trace or args.metrics or args.prom)
    observer = TelemetryObserver() if collect_telemetry else NULL_OBSERVER

    dataset, quality = load_dataset(args, observer)

    fault_log = None
    if args.inject_faults:
        chaos = parse_chaos_spec(args.inject_faults)
        corrupted, fault_log = inject_dataset(dataset, chaos,
                                              observer=observer)
        result = sanitize_profiles(corrupted, observer=observer)
        quality = _merge_quality(quality, result)
        dataset = result.dataset

    summary = dataset.summary()
    print(f"loaded {summary.n_drives} drives "
          f"({summary.n_failed} failed, {summary.n_good} good)")
    if quality is not None and (not quality.clean or fault_log is not None):
        print(render_data_quality(quality))
    if summary.n_failed < 3:
        raise ReproError("need at least 3 failed drives to categorize")

    retry_policy = None
    if args.retries or args.chunk_timeout is not None:
        retry_policy = RetryPolicy.resilient(max_retries=args.retries,
                                             timeout_s=args.chunk_timeout)
    cache = None
    if not args.no_cache:
        cache = DatasetCache(args.cache_dir, observer=observer)
    pipeline = CharacterizationPipeline(
        n_clusters=args.clusters if args.clusters > 0 else None,
        run_prediction=not args.no_prediction,
        seed=args.seed,
        n_jobs=args.jobs,
        retry_policy=retry_policy,
        cache=cache,
        observer=observer,
    )
    report = pipeline.run(dataset)
    print()
    print(render_report(report))
    if args.json:
        telemetry = (observer.telemetry_section()
                     if isinstance(observer, TelemetryObserver) else None)
        data_quality = None
        if quality is not None and (not quality.clean
                                    or fault_log is not None):
            data_quality = quality.data_quality_section()
            if fault_log is not None:
                data_quality["fault_injection"] = fault_log.to_dict()
        save_report_json(report, args.json, telemetry=telemetry,
                         data_quality=data_quality)
        print(f"\nreport written to {args.json}")
    if args.export_model:
        if args.no_prediction:
            raise ReproError(
                "--export-model needs the trained predictors; drop "
                "--no-prediction"
            )
        bundle = build_bundle(report, seed=args.seed)
        save_bundle(bundle, args.export_model, observer=observer)
        print(f"model bundle written to {args.export_model}")
    if args.trace:
        observer.tracer.save_json(args.trace)
        print(f"trace written to {args.trace}")
    if args.metrics:
        Path(args.metrics).write_text(observer.metrics.to_json())
        print(f"metrics written to {args.metrics}")
    if args.prom:
        Path(args.prom).write_text(render_prometheus(observer.metrics))
        print(f"Prometheus metrics written to {args.prom}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
