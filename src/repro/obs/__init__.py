"""repro.obs — instrumentation substrate for the characterization pipeline.

The package gives the analyzer the telemetry production disk-health
systems expect of their own tooling:

* :mod:`repro.obs.tracing` — nestable stage spans with wall/CPU time,
  exportable as a JSON trace tree;
* :mod:`repro.obs.metrics` — counters, gauges and bounded streaming
  histograms behind a :class:`MetricsRegistry` with labeled families,
  text/JSON snapshots and cross-process state merging;
* :mod:`repro.obs.export` — Prometheus text exposition, JSONL
  metric/trace dumps and atomic/periodic snapshot files;
* :mod:`repro.obs.recorder` — the :class:`FlightRecorder` bounded ring
  of recent alerts/errors with on-demand and on-crash dumps;
* :mod:`repro.obs.http` — the zero-dependency ``/metrics`` +
  ``/health`` + ``/status`` HTTP surface
  (:class:`TelemetryHTTPServer`);
* :mod:`repro.obs.logging` — one-call structured logging setup with
  per-module loggers and an optional JSON line format;
* :mod:`repro.obs.observer` — the :class:`PipelineObserver` seam the
  pipeline emits through (no-op by default, so uninstrumented runs pay
  nothing);
* :mod:`repro.obs.timing` — standalone ``timeit`` helpers.

See ``docs/observability.md`` for the operator-facing walkthrough.
"""

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    PeriodicSnapshotWriter,
    metrics_jsonl,
    render_prometheus,
    trace_jsonl,
    write_snapshot,
)
from repro.obs.http import TelemetryHTTPServer
from repro.obs.logging import configure as configure_logging
from repro.obs.logging import get_logger, verbosity_to_level
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.recorder import FlightEvent, FlightRecorder
from repro.obs.observer import (
    NULL_OBSERVER,
    NoopObserver,
    PipelineObserver,
    TelemetryObserver,
    instrumented,
    resolve_observer,
)
from repro.obs.timing import TimeitResult, format_duration, timeit
from repro.obs.tracing import Span, Tracer

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "PeriodicSnapshotWriter",
    "TelemetryHTTPServer",
    "FlightEvent",
    "FlightRecorder",
    "metrics_jsonl",
    "render_prometheus",
    "trace_jsonl",
    "write_snapshot",
    "configure_logging",
    "get_logger",
    "verbosity_to_level",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NoopObserver",
    "PipelineObserver",
    "TelemetryObserver",
    "instrumented",
    "resolve_observer",
    "TimeitResult",
    "format_duration",
    "timeit",
    "Span",
    "Tracer",
]
