"""repro.obs — instrumentation substrate for the characterization pipeline.

The package gives the analyzer the telemetry production disk-health
systems expect of their own tooling:

* :mod:`repro.obs.tracing` — nestable stage spans with wall/CPU time,
  exportable as a JSON trace tree;
* :mod:`repro.obs.metrics` — counters, gauges and histograms behind a
  :class:`MetricsRegistry` with text/JSON snapshots;
* :mod:`repro.obs.logging` — one-call structured logging setup with
  per-module loggers and an optional JSON line format;
* :mod:`repro.obs.observer` — the :class:`PipelineObserver` seam the
  pipeline emits through (no-op by default, so uninstrumented runs pay
  nothing);
* :mod:`repro.obs.timing` — standalone ``timeit`` helpers.

See ``docs/observability.md`` for the operator-facing walkthrough.
"""

from repro.obs.logging import configure as configure_logging
from repro.obs.logging import get_logger, verbosity_to_level
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observer import (
    NULL_OBSERVER,
    NoopObserver,
    PipelineObserver,
    TelemetryObserver,
    instrumented,
    resolve_observer,
)
from repro.obs.timing import TimeitResult, format_duration, timeit
from repro.obs.tracing import Span, Tracer

__all__ = [
    "configure_logging",
    "get_logger",
    "verbosity_to_level",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NoopObserver",
    "PipelineObserver",
    "TelemetryObserver",
    "instrumented",
    "resolve_observer",
    "TimeitResult",
    "format_duration",
    "timeit",
    "Span",
    "Tracer",
]
