"""Telemetry export: Prometheus exposition, JSONL dumps, snapshots.

The batch pipeline snapshots its metrics once at exit; a long-running
scorer must *publish* them instead.  This module is the wire layer:

* :func:`render_prometheus` — the registry in Prometheus text
  exposition format (version 0.0.4), stable ordering, proper label
  escaping, counters suffixed ``_total``, histograms expanded into
  cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` lines;
* :func:`metrics_jsonl` / :func:`trace_jsonl` — one JSON object per
  metric / span, in stable (name-sorted / depth-first) order, for log
  shippers and offline diffing;
* :func:`write_snapshot` — one atomic combined snapshot file (JSON);
* :class:`PeriodicSnapshotWriter` — a daemon thread calling
  :func:`write_snapshot` every ``interval_s`` seconds, so an operator
  can tail the latest state of a scorer that predates the HTTP surface
  (or runs where no scraper reaches).

Everything here *reads* registries other threads may be writing.  The
registry's per-operation updates are atomic under the GIL, so a render
taken mid-update is a consistent-enough monitoring view; no exporter
ever blocks the scoring hot path on a lock.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Any

from repro.errors import ObservabilityError
from repro.ioutil import atomic_write_text
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    render_label_suffix,
)
from repro.obs.tracing import Tracer

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix applied to every exposed metric name (``samples_scored`` is
#: exposed as ``repro_samples_scored_total``), namespacing the library
#: in shared Prometheus servers.
DEFAULT_NAMESPACE = "repro"


def _format_value(value: float) -> str:
    """Exposition-stable number formatting (integers without a dot)."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    """``le`` bound formatting; the +Inf bucket renders as ``+Inf``."""
    if math.isinf(bound):
        return "+Inf"
    return format(bound, ".10g")


def render_prometheus(registry: MetricsRegistry, *,
                      namespace: str = DEFAULT_NAMESPACE) -> str:
    """Render ``registry`` in Prometheus text exposition format.

    Families are name-sorted and labeled members label-sorted, so equal
    registries render byte-identically — the exposition is golden-
    testable.  Counters follow the ``_total`` naming convention;
    histograms expose cumulative buckets over the registry's fixed
    log-spaced bounds plus exact ``_sum`` / ``_count``.
    """
    prefix = f"{namespace}_" if namespace else ""
    lines: list[str] = []
    for name, kind, members in registry.families():
        exposed = f"{prefix}{name}_total" if kind == "counter" \
            else f"{prefix}{name}"
        lines.append(f"# TYPE {exposed} {kind}")
        for metric in members:
            suffix = render_label_suffix(metric.labels)
            if isinstance(metric, Histogram):
                lines.extend(_histogram_lines(exposed, metric))
            else:
                lines.append(
                    f"{exposed}{suffix} {_format_value(metric.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_lines(exposed: str, histogram: Histogram) -> list[str]:
    """Cumulative bucket / sum / count sample lines for one histogram."""
    lines = []
    for bound, cumulative in histogram.cumulative_buckets():
        labels = list(histogram.labels) + [("le", _format_bound(bound))]
        body = ",".join(f'{k}="{v}"' for k, v in labels)
        lines.append(f"{exposed}_bucket{{{body}}} {cumulative}")
    suffix = render_label_suffix(histogram.labels)
    lines.append(f"{exposed}_sum{suffix} {_format_value(histogram.sum)}")
    lines.append(f"{exposed}_count{suffix} {histogram.count}")
    return lines


def metrics_jsonl(registry: MetricsRegistry) -> str:
    """One key-sorted JSON object per metric, in stable name order.

    Each line carries ``name``, ``labels``, ``kind`` and the metric's
    snapshot fields — the machine-diffable twin of
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.
    """
    lines = []
    for name, _kind, members in registry.families():
        for metric in members:
            payload: dict[str, Any] = {
                "name": name,
                "labels": dict(metric.labels),
            }
            payload.update(metric.snapshot())
            lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def trace_jsonl(tracer: Tracer) -> str:
    """One JSON object per span, depth-first, with slash-joined paths.

    Flattening the span tree to lines keeps huge traces streamable and
    greppable (``"path": "pipeline/signatures/signature-fanout"``)
    while the nesting stays recoverable from the paths.
    """
    lines = []

    def _walk(span, prefix: str) -> None:
        path = f"{prefix}/{span.name}" if prefix else span.name
        payload: dict[str, Any] = {
            "path": path,
            "name": span.name,
            "wall_s": span.wall_s,
            "cpu_s": span.cpu_s,
            "status": span.status,
        }
        if span.attributes:
            payload["attributes"] = dict(span.attributes)
        if span.error is not None:
            payload["error"] = span.error
        lines.append(json.dumps(payload, sort_keys=True))
        for child in span.children:
            _walk(child, path)

    for root in tracer.roots:
        _walk(root, "")
    return "\n".join(lines) + ("\n" if lines else "")


def write_snapshot(registry: MetricsRegistry, path: str | Path, *,
                   tracer: Tracer | None = None) -> Path:
    """Atomically write a combined JSON snapshot of the registry.

    The payload carries the metric snapshot (and the trace tree when a
    tracer is given) under stable keys; the write goes through a
    same-directory temp file and an atomic rename, so a reader tailing
    the file never sees a torn snapshot.
    """
    path = Path(path)
    payload: dict[str, Any] = {"metrics": registry.snapshot()}
    if tracer is not None:
        payload["trace"] = tracer.to_dict()
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    try:
        atomic_write_text(path, text)
    except OSError as error:
        raise ObservabilityError(
            f"cannot write telemetry snapshot to {path}: {error}"
        ) from error
    return path


class PeriodicSnapshotWriter:
    """Background thread writing :func:`write_snapshot` on an interval.

    The writer is a context manager::

        with PeriodicSnapshotWriter(registry, "metrics.json", 5.0):
            ...  # snapshot refreshed every 5 s, once more on exit

    ``stop()`` always writes one final snapshot, so the file reflects
    the end state even for runs shorter than one interval.
    """

    def __init__(self, registry: MetricsRegistry, path: str | Path,
                 interval_s: float, *, tracer: Tracer | None = None) -> None:
        if interval_s <= 0:
            raise ObservabilityError(
                f"snapshot interval must be positive, got {interval_s}"
            )
        self._registry = registry
        self._path = Path(path)
        self._interval_s = float(interval_s)
        self._tracer = tracer
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.writes = 0

    def write_now(self) -> Path:
        """Write one snapshot immediately (also used by the thread)."""
        result = write_snapshot(self._registry, self._path,
                                tracer=self._tracer)
        self.writes += 1
        return result

    def start(self) -> "PeriodicSnapshotWriter":
        """Start the daemon writer thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-snapshot-writer", daemon=True)
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            self.write_now()

    def stop(self) -> None:
        """Stop the thread and write the final snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.write_now()

    def __enter__(self) -> "PeriodicSnapshotWriter":
        return self.start()

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.stop()
        return False
