"""Structured logging setup for the :mod:`repro` package.

Every module logs through a child of the ``repro`` logger
(:func:`get_logger`), so one :func:`configure` call controls the whole
library: level, destination stream, and whether records render as plain
text or as one JSON object per line (for log shippers)::

    from repro.obs import logging as obs_logging

    obs_logging.configure(level="INFO", json_mode=True)
    log = obs_logging.get_logger(__name__)
    log.info("fleet simulated", extra={"fields": {"drives": 4000}})

Structured payloads ride in the ``fields`` extra; the JSON formatter
merges them into the emitted object and the text formatter appends them
as ``key=value`` pairs.
"""

from __future__ import annotations

import json
import logging as _logging
import sys
from typing import Any, TextIO

#: Root logger of the library; every repro logger is a child of it.
ROOT_LOGGER_NAME = "repro"

_TEXT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


class JsonFormatter(_logging.Formatter):
    """One JSON object per record: ts, level, logger, message, fields."""

    def format(self, record: _logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload["fields"] = fields
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class TextFormatter(_logging.Formatter):
    """Classic text lines, with structured fields as ``key=value``."""

    def __init__(self) -> None:
        super().__init__(_TEXT_FORMAT, datefmt=_DATE_FORMAT)

    def format(self, record: _logging.LogRecord) -> str:
        text = super().format(record)
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict) and fields:
            suffix = " ".join(
                f"{key}={fields[key]}" for key in sorted(fields)
            )
            text = f"{text} [{suffix}]"
        return text


def configure(level: int | str = "WARNING", *, json_mode: bool = False,
              stream: TextIO | None = None) -> _logging.Logger:
    """(Re)configure the library's logging in one call.

    Replaces any handler a previous ``configure`` installed, so repeated
    calls (e.g. one per CLI invocation in a test run) do not stack
    handlers and duplicate output.  Returns the ``repro`` root logger.
    """
    logger = _logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
            handler.close()
    handler = _logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(JsonFormatter() if json_mode else TextFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: str) -> _logging.Logger:
    """Logger namespaced under ``repro`` (pass ``__name__`` normally)."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return _logging.getLogger(name)
    return _logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """Map counted ``-v`` flags onto logging levels."""
    if verbosity <= 0:
        return _logging.WARNING
    if verbosity == 1:
        return _logging.INFO
    return _logging.DEBUG
