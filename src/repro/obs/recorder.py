"""Flight recorder: a bounded ring buffer of recent structured events.

Counters tell an operator *how much* happened; when a scorer
misbehaves, they need to know *what happened last*.  The
:class:`FlightRecorder` keeps the most recent ``capacity`` events —
alerts, errors, lifecycle marks — each with a monotone sequence number,
a wall-clock timestamp, a kind, a message and arbitrary JSON-clean
context.  Memory is O(capacity) no matter how long the stream runs;
older events fall off the front and are only counted (``dropped``).

The recorder is thread-safe (the serving HTTP surface reads the tail
while the scorer appends) and dumps on demand (:meth:`tail`,
:meth:`to_dicts`, :meth:`dump_jsonl`) or on crash: wrap the risky
region in :meth:`guard` and an escaping exception writes the full ring
— with the failure recorded as its final event — before propagating::

    recorder = FlightRecorder(capacity=512)
    with recorder.guard("crash_dump.jsonl"):
        serve_forever(recorder)
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import ObservabilityError
from repro.ioutil import atomic_write_text

#: Default ring size; at one event per alert this covers the recent
#: history an incident review actually reads.
DEFAULT_CAPACITY = 512


@dataclass(frozen=True, slots=True)
class FlightEvent:
    """One recorded event: sequence number, time, kind, message, context."""

    seq: int
    wall_time: float
    kind: str
    message: str
    context: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """Plain-type mapping, ready for JSON serialization."""
        return {
            "seq": self.seq,
            "wall_time": self.wall_time,
            "kind": self.kind,
            "message": self.message,
            "context": dict(self.context),
        }


class FlightRecorder:
    """Bounded ring buffer of the last ``capacity`` structured events.

    Parameters
    ----------
    capacity:
        Maximum events retained; older events are evicted (and counted
        in :attr:`dropped`).
    clock:
        Timestamp source (``time.time`` by default); injectable so
        tests can pin deterministic timestamps.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 clock: Callable[[], float] = time.time) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._clock = clock
        self._events: deque[FlightEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0

    @property
    def capacity(self) -> int:
        """Maximum events retained."""
        return self._capacity

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (including evicted ones)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted from the front of the ring."""
        with self._lock:
            return self._seq - len(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def record(self, kind: str, message: str,
               **context: Any) -> FlightEvent:
        """Append one event and return it.

        ``kind`` is a coarse routing tag (``"alert"``, ``"error"``,
        ``"lifecycle"``, ...); ``context`` is arbitrary JSON-clean
        detail.
        """
        with self._lock:
            event = FlightEvent(
                seq=self._seq,
                wall_time=float(self._clock()),
                kind=str(kind),
                message=str(message),
                context=dict(context),
            )
            self._seq += 1
            self._events.append(event)
        return event

    def tail(self, n: int | None = None) -> list[FlightEvent]:
        """The most recent ``n`` events, oldest first (all if ``None``)."""
        with self._lock:
            events = list(self._events)
        if n is None:
            return events
        if n < 0:
            raise ObservabilityError(f"tail length must be >= 0, got {n}")
        return events[len(events) - min(n, len(events)):]

    def events_of(self, kind: str) -> list[FlightEvent]:
        """Retained events of one kind, oldest first."""
        return [event for event in self.tail() if event.kind == kind]

    def to_dicts(self, n: int | None = None) -> list[dict[str, Any]]:
        """The tail as plain dicts, ready for a JSON status payload."""
        return [event.to_dict() for event in self.tail(n)]

    def dump_jsonl(self, path: str | Path) -> Path:
        """Write the retained ring as JSONL, one event per line.

        Atomic (temp file + rename), so a crash during the dump never
        leaves a torn file under the final name.
        """
        path = Path(path)
        lines = [json.dumps(event, sort_keys=True)
                 for event in self.to_dicts()]
        try:
            atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
        except OSError as error:
            raise ObservabilityError(
                f"cannot dump flight recorder to {path}: {error}"
            ) from error
        return path

    @contextmanager
    def guard(self, path: str | Path) -> Iterator["FlightRecorder"]:
        """Dump the ring to ``path`` if the guarded block raises.

        The escaping exception is recorded as a final ``"crash"`` event
        (type and message) and always propagates; a clean exit writes
        nothing.
        """
        try:
            yield self
        except BaseException as error:
            self.record("crash", f"{type(error).__name__}: {error}",
                        exception=type(error).__name__)
            self.dump_jsonl(path)
            raise
