"""Nestable span tracing for the characterization pipeline.

A :class:`Tracer` records a tree of named spans — one per pipeline stage
or sub-stage — with wall time (``time.perf_counter``), CPU time
(``time.process_time``) and arbitrary attributes::

    tracer = Tracer()
    with tracer.span("cluster", k=3):
        with tracer.span("elbow"):
            ...

The finished trace is a plain tree of :class:`Span` records exportable
as JSON (:meth:`Tracer.to_dict` / :meth:`Tracer.save_json`) and loadable
back (:meth:`Tracer.from_dict`), so stage timings survive the process
and can be diffed across runs.

The tracer is deliberately simple: spans nest via an explicit stack, so
one tracer serves one thread of execution.  Concurrent pipelines should
each carry their own tracer.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ObservabilityError

#: Version written into exported traces; bump on breaking changes.
TRACE_SCHEMA_VERSION = 1


@dataclass
class Span:
    """One timed region of the trace tree.

    ``wall_s`` and ``cpu_s`` are filled in when the span closes; a span
    that exited through an exception carries ``status="error"`` and the
    formatted exception in ``error``.
    """

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    cpu_s: float = 0.0
    status: str = "ok"
    error: str | None = None
    children: list["Span"] = field(default_factory=list)

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "status": self.status,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.error is not None:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        if not isinstance(payload, dict) or "name" not in payload:
            raise ObservabilityError(f"malformed span payload: {payload!r}")
        return cls(
            name=str(payload["name"]),
            attributes=dict(payload.get("attributes", {})),
            wall_s=float(payload.get("wall_s", 0.0)),
            cpu_s=float(payload.get("cpu_s", 0.0)),
            status=str(payload.get("status", "ok")),
            error=payload.get("error"),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
        )


class _ActiveSpan:
    """Context manager closing one span and popping the tracer stack."""

    __slots__ = ("_tracer", "span", "_wall_start", "_cpu_start")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self.span

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.span.wall_s = time.perf_counter() - self._wall_start
        self.span.cpu_s = time.process_time() - self._cpu_start
        if exc is not None:
            self.span.status = "error"
            self.span.error = f"{type(exc).__name__}: {exc}"
        self._tracer._pop(self.span)
        return False  # never swallow the exception


class Tracer:
    """Collects a forest of nested spans for one pipeline run."""

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def roots(self) -> tuple[Span, ...]:
        """Top-level spans, in start order."""
        return tuple(self._roots)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a child span of the current span (or a new root)."""
        span = Span(name=name, attributes=attributes)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order"
            )
        self._stack.pop()

    def walk(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""
        for root in self._roots:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        """First recorded span with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def stage_timings(self) -> dict[str, float]:
        """Total wall seconds per span name, summed over occurrences."""
        timings: dict[str, float] = {}
        for span in self.walk():
            timings[span.name] = timings.get(span.name, 0.0) + span.wall_s
        return dict(sorted(timings.items()))

    def to_dict(self) -> dict[str, Any]:
        """Export the whole trace as JSON-serializable types."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "spans": [root.to_dict() for root in self._roots],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Tracer":
        """Rebuild a tracer from :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise ObservabilityError("trace payload must be a JSON object")
        version = payload.get("schema_version")
        if version != TRACE_SCHEMA_VERSION:
            raise ObservabilityError(
                f"trace schema version {version!r}, "
                f"expected {TRACE_SCHEMA_VERSION}"
            )
        tracer = cls()
        tracer._roots = [Span.from_dict(s) for s in payload.get("spans", [])]
        return tracer

    def save_json(self, path: str | Path) -> None:
        """Write the trace to ``path`` as indented, key-sorted JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load_json(cls, path: str | Path) -> "Tracer":
        """Load a trace written by :meth:`save_json`."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ObservabilityError(
                f"{path}: not a valid trace file: {error}"
            ) from error
        return cls.from_dict(payload)
