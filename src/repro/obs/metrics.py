"""Counters, gauges and histograms for the analysis pipeline.

A :class:`MetricsRegistry` hands out named metrics on first use and
renders the whole set as a JSON snapshot or an aligned text block::

    registry = MetricsRegistry()
    registry.counter("drives_processed").inc(4000)
    registry.histogram("window_length").observe(382.0)
    print(registry.render_text())

Metric kinds follow the conventional trio: a :class:`Counter` only ever
accumulates, a :class:`Gauge` holds the latest value, and a
:class:`Histogram` tracks a distribution.

Histograms are **bounded by default** so a streaming scorer can observe
millions of samples without growing memory: exact aggregates (count,
sum, min, max) are tracked incrementally, per-value counts go into the
fixed log-spaced :data:`BUCKET_BOUNDS` (the same buckets Prometheus
exposition renders), and quantiles come from a deterministic compacting
reservoir of at most ``retention`` retained values.  Below the retention
cap the reservoir holds every observation, so quantiles stay *exact* —
identical to the historical behavior — and beyond it the reservoir
thins itself to every 2nd, 4th, ... observation, keeping quantile
estimates representative at O(retention) memory.  Batch callers that
want unbounded exact quantiles regardless of volume pass
``retention=None``.

Metrics may carry **labels** — a small mapping of string key/value
pairs — turning a name into a family of time series (one per label
set), the way Prometheus models dimensions::

    registry.counter("telemetry_requests", labels={"endpoint": "metrics"})

Cross-process aggregation goes through :meth:`MetricsRegistry.dump_state`
and :meth:`MetricsRegistry.merge_state`: a worker process dumps its
registry to plain JSON-clean types, ships it home with its results, and
the parent merges deltas deterministically (counters add, gauges take
the later write, histograms combine aggregates, buckets and
reservoirs).  :func:`repro.parallel.map_drives` does exactly this for
every fan-out.
"""

from __future__ import annotations

import bisect
import json
import math
import re
from typing import Any, Iterator, Mapping

from repro.errors import ObservabilityError

#: Quantiles reported in every histogram snapshot.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)

#: Default histogram reservoir capacity.  Below this many observations
#: quantiles are exact; beyond it the reservoir compacts (memory stays
#: bounded, quantiles become representative estimates).
DEFAULT_HISTOGRAM_RETENTION = 4096

#: Metric and label-key grammar (Prometheus-compatible snake_case).
_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*$")


def _log_spaced_bounds() -> tuple[float, ...]:
    """Fixed 1-2.5-5 log-spaced bucket bounds, mirrored around zero.

    Positive decades cover 1e-3 .. 5e6 — sub-millisecond latencies up
    to multi-week hour counts — and every positive bound has a negative
    mirror so signed observations (degradation stages are negative)
    resolve too.
    """
    positive = [m * 10.0 ** e for e in range(-3, 7) for m in (1.0, 2.5, 5.0)]
    return tuple([-b for b in reversed(positive)] + [0.0] + positive)


#: Upper bounds (``le``) of the shared histogram buckets; observations
#: above the last bound land in the implicit +Inf bucket.
BUCKET_BOUNDS = _log_spaced_bounds()


def _check_name(name: str) -> str:
    """Enforce the snake_case metric-name grammar."""
    if not _NAME_PATTERN.match(name):
        raise ObservabilityError(
            f"metric name {name!r} is not snake_case "
            "(expected ^[a-z][a-z0-9_]*$)"
        )
    return name


def normalize_labels(labels: Mapping[str, str] | None,
                     ) -> tuple[tuple[str, str], ...]:
    """Canonicalize a label mapping to a sorted, hashable tuple."""
    if not labels:
        return ()
    normalized = []
    for key in sorted(labels):
        if not _NAME_PATTERN.match(key):
            raise ObservabilityError(
                f"label key {key!r} is not snake_case"
            )
        normalized.append((key, str(labels[key])))
    return tuple(normalized)


def render_label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    """``{k="v",...}`` suffix for a label set (empty string if none)."""
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + body + "}"


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str,
                 labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def state_dict(self) -> dict[str, Any]:
        """JSON-clean state for cross-process merging."""
        return {"name": self.name, "labels": [list(l) for l in self.labels],
                "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str,
                 labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def state_dict(self) -> dict[str, Any]:
        """JSON-clean state for cross-process merging."""
        return {"name": self.name, "labels": [list(l) for l in self.labels],
                "value": self.value}


class Histogram:
    """Distribution of observed values with bounded streaming state.

    Aggregates (count, sum, min, max) and the fixed
    :data:`BUCKET_BOUNDS` counts are always exact.  Quantiles come from
    a retained sample: with ``retention=None`` every observation is
    kept (exact quantiles at unbounded memory — the batch-analysis
    mode); with an integer ``retention`` (the default,
    :data:`DEFAULT_HISTOGRAM_RETENTION`) the sample is exact until the
    cap is reached, then deterministically compacts to every 2nd, 4th,
    ... observation so memory never exceeds the cap however long the
    stream runs.
    """

    __slots__ = ("name", "labels", "_retention", "_values", "_stride",
                 "_skip", "_count", "_sum", "_min", "_max", "_buckets")
    kind = "histogram"

    def __init__(self, name: str,
                 labels: tuple[tuple[str, str], ...] = (), *,
                 retention: int | None = DEFAULT_HISTOGRAM_RETENTION) -> None:
        if retention is not None and retention < 2:
            raise ObservabilityError(
                f"histogram {name!r}: retention must be >= 2 or None, "
                f"got {retention}"
            )
        self.name = name
        self.labels = labels
        self._retention = retention
        self._values: list[float] = []
        self._stride = 1
        self._skip = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ObservabilityError(
                f"histogram {self.name!r} observed non-finite value {value!r}"
            )
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._buckets[bisect.bisect_left(BUCKET_BOUNDS, value)] += 1
        if self._retention is None:
            self._values.append(value)
            return
        if self._skip:
            self._skip -= 1
            return
        self._values.append(value)
        self._skip = self._stride - 1
        if len(self._values) >= self._retention:
            self._compact()

    def _compact(self) -> None:
        """Halve the reservoir and double the keep stride."""
        self._values = self._values[::2]
        self._stride *= 2
        self._skip = self._stride - 1

    @property
    def count(self) -> int:
        """Exact number of observations (independent of retention)."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum of all observations."""
        return self._sum

    @property
    def retention(self) -> int | None:
        """Reservoir capacity (``None`` = keep everything)."""
        return self._retention

    @property
    def retained(self) -> int:
        """Values currently held for quantile estimation."""
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._count:
            return 0.0
        return self._sum / self._count

    @property
    def min(self) -> float:
        """Exact smallest observation (0.0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Exact largest observation (0.0 when empty)."""
        return self._max if self._count else 0.0

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket observation counts (last entry is the +Inf bucket)."""
        return tuple(self._buckets)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le_bound, cumulative_count)`` pairs, +Inf bound last."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(BUCKET_BOUNDS, self._buckets):
            running += count
            pairs.append((bound, running))
        pairs.append((math.inf, running + self._buckets[-1]))
        return pairs

    def quantile(self, q: float) -> float:
        """Quantile with linear interpolation over the retained sample.

        Exact while the stream fits the retention cap (or with
        ``retention=None``); a representative estimate afterwards.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = q * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def snapshot(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind, "count": self.count}
        if self._count:
            payload.update(min=self._min, max=self._max, mean=self.mean)
            for q in SNAPSHOT_QUANTILES:
                payload[f"p{int(q * 100)}"] = self.quantile(q)
        return payload

    def state_dict(self) -> dict[str, Any]:
        """JSON-clean state for cross-process merging."""
        return {
            "name": self.name,
            "labels": [list(l) for l in self.labels],
            "retention": self._retention,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": list(self._buckets),
            "values": list(self._values),
            "stride": self._stride,
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state_dict` into this one.

        Aggregates and bucket counts add exactly; the reservoirs
        concatenate and re-compact under the receiver's retention, with
        the stride taken as the max of both sides — deterministic for a
        fixed merge order.
        """
        try:
            buckets = list(state["buckets"])
            count = int(state["count"])
            total = float(state["sum"])
            values = [float(v) for v in state["values"]]
            stride = int(state["stride"])
            low, high = state["min"], state["max"]
        except (KeyError, TypeError, ValueError) as error:
            raise ObservabilityError(
                f"histogram {self.name!r}: malformed merge state: {error}"
            ) from error
        if len(buckets) != len(self._buckets):
            raise ObservabilityError(
                f"histogram {self.name!r}: bucket layout mismatch "
                f"({len(buckets)} != {len(self._buckets)})"
            )
        self._count += count
        self._sum += total
        if low is not None and float(low) < self._min:
            self._min = float(low)
        if high is not None and float(high) > self._max:
            self._max = float(high)
        for index, bucket_count in enumerate(buckets):
            self._buckets[index] += int(bucket_count)
        self._values.extend(values)
        self._stride = max(self._stride, stride)
        if self._retention is not None:
            while len(self._values) >= self._retention:
                self._compact()


#: The three metric kinds, by their ``kind`` attribute.
_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}

#: Registry key: (name, normalized label tuple).
_MetricKey = tuple[str, tuple[tuple[str, str], ...]]


class MetricsRegistry:
    """Named metric families, created on first access.

    Re-requesting a name (with the same labels) returns the same
    instance; requesting a name as a different kind — under *any* label
    set — raises :class:`ObservabilityError`: a metric name means one
    thing for the life of the registry.
    """

    def __init__(self) -> None:
        self._metrics: dict[_MetricKey, Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, type] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._kinds

    def names(self) -> tuple[str, ...]:
        """Sorted unique metric (family) names."""
        return tuple(sorted(self._kinds))

    def counter(self, name: str,
                labels: Mapping[str, str] | None = None) -> Counter:
        return self._get_or_create(name, Counter, labels)

    def gauge(self, name: str,
              labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get_or_create(name, Gauge, labels)

    def histogram(self, name: str,
                  labels: Mapping[str, str] | None = None, *,
                  retention: int | None = DEFAULT_HISTOGRAM_RETENTION,
                  ) -> Histogram:
        """The named histogram; ``retention`` applies on first creation."""
        return self._get_or_create(name, Histogram, labels,
                                   retention=retention)

    def _get_or_create(self, name: str, factory, labels, **kwargs):
        # Fast path for the hot loop: an existing metric's name and
        # labels were validated when it was created, so a hit needs
        # only the kind check, no regex work.
        key = (name, normalize_labels(labels) if labels else ())
        metric = self._metrics.get(key)
        if metric is not None:
            if self._kinds.get(name) is not factory:
                registered = self._kinds[name]
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{registered.kind}, requested as {factory.kind}"
                )
            return metric
        registered = self._kinds.get(_check_name(name))
        if registered is not None and registered is not factory:
            raise ObservabilityError(
                f"metric {name!r} already registered as "
                f"{registered.kind}, requested as {factory.kind}"
            )
        metric = factory(name, key[1], **kwargs)
        self._metrics[key] = metric
        self._kinds[name] = factory
        return metric

    def families(self) -> Iterator[tuple[str, str, list[Counter | Gauge |
                                                        Histogram]]]:
        """``(name, kind, members)`` per family, name-sorted, members
        sorted by rendered label suffix (the unlabeled member first)."""
        by_name: dict[str, list] = {}
        for (name, _), metric in self._metrics.items():
            by_name.setdefault(name, []).append(metric)
        for name in sorted(by_name):
            members = sorted(by_name[name],
                             key=lambda m: render_label_suffix(m.labels))
            yield name, self._kinds[name].kind, members

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All metrics as a key-sorted JSON-serializable mapping.

        Unlabeled metrics key on their name; labeled members key on
        ``name{k="v",...}``.
        """
        flat = {
            name + render_label_suffix(labels): metric.snapshot()
            for (name, labels), metric in self._metrics.items()
        }
        return {key: flat[key] for key in sorted(flat)}

    def to_json(self) -> str:
        """The snapshot as indented, key-sorted JSON text."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def dump_state(self) -> dict[str, Any]:
        """Full registry state as JSON-clean plain types.

        The shippable twin of :meth:`snapshot`: where snapshots are
        summaries for humans, the state dump is lossless enough for
        :meth:`merge_state` to aggregate registries across process
        boundaries (counter values, gauge values, full histogram
        bucket/reservoir state).
        """
        counters, gauges, histograms = [], [], []
        for (name, _labels), metric in sorted(
                self._metrics.items(),
                key=lambda item: (item[0][0],
                                  render_label_suffix(item[0][1]))):
            if isinstance(metric, Counter):
                counters.append(metric.state_dict())
            elif isinstance(metric, Gauge):
                gauges.append(metric.state_dict())
            else:
                histograms.append(metric.state_dict())
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a :meth:`dump_state` payload into this registry.

        Counters add, gauges take the incoming value (last write wins,
        so merge order decides ties), histograms merge exactly on
        aggregates/buckets and deterministically on reservoirs.  Merging
        is the parent-side half of cross-process metric aggregation —
        see :func:`repro.parallel.map_drives`.
        """
        try:
            counter_states = state["counters"]
            gauge_states = state["gauges"]
            histogram_states = state["histograms"]
        except (KeyError, TypeError) as error:
            raise ObservabilityError(
                f"malformed registry state: {error}") from error
        for entry in counter_states:
            labels = dict(tuple(pair) for pair in entry["labels"])
            self.counter(entry["name"], labels).inc(float(entry["value"]))
        for entry in gauge_states:
            labels = dict(tuple(pair) for pair in entry["labels"])
            self.gauge(entry["name"], labels).set(float(entry["value"]))
        for entry in histogram_states:
            labels = dict(tuple(pair) for pair in entry["labels"])
            histogram = self.histogram(entry["name"], labels,
                                       retention=entry.get("retention"))
            histogram.merge_state(entry)

    def render_text(self) -> str:
        """Aligned one-line-per-metric text block for terminals."""
        lines = []
        keys = {key: key[0] + render_label_suffix(key[1])
                for key in self._metrics}
        width = max((len(rendered) for rendered in keys.values()), default=0)
        for key in sorted(self._metrics, key=lambda k: keys[k]):
            metric = self._metrics[key]
            rendered = keys[key]
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                if metric.count:
                    detail = (
                        f"count={snap['count']} mean={snap['mean']:.4g} "
                        f"p50={snap['p50']:.4g} p99={snap['p99']:.4g}"
                    )
                else:
                    detail = "count=0"
                lines.append(f"{rendered:<{width}}  histogram  {detail}")
            else:
                lines.append(
                    f"{rendered:<{width}}  {metric.kind:<9}  "
                    f"{metric.value:g}"
                )
        return "\n".join(lines)
