"""Counters, gauges and histograms for the analysis pipeline.

A :class:`MetricsRegistry` hands out named metrics on first use and
renders the whole set as a JSON snapshot or an aligned text block::

    registry = MetricsRegistry()
    registry.counter("drives_processed").inc(4000)
    registry.histogram("window_length").observe(382.0)
    print(registry.render_text())

Metric kinds follow the conventional trio: a :class:`Counter` only ever
accumulates, a :class:`Gauge` holds the latest value, and a
:class:`Histogram` keeps every observation so exact quantiles can be
computed at snapshot time (pipeline runs observe thousands of values,
not millions, so exact retention beats bucketing here).
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.errors import ObservabilityError

#: Quantiles reported in every histogram snapshot.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Distribution of observed values with exact quantiles."""

    __slots__ = ("name", "_values")
    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ObservabilityError(
                f"histogram {self.name!r} observed non-finite value {value!r}"
            )
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def quantile(self, q: float) -> float:
        """Exact quantile with linear interpolation between order stats."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = q * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def snapshot(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind, "count": self.count}
        if self._values:
            payload.update(
                min=min(self._values),
                max=max(self._values),
                mean=self.mean,
            )
            for q in SNAPSHOT_QUANTILES:
                payload[f"p{int(q * 100)}"] = self.quantile(q)
        return payload


class MetricsRegistry:
    """Named metrics, created on first access.

    Re-requesting a name returns the same instance; requesting it as a
    different kind raises :class:`ObservabilityError` — a metric name
    means one thing for the life of the registry.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def _get_or_create(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {factory.kind}"
            )
        return metric

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All metrics as a name-sorted JSON-serializable mapping."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def to_json(self) -> str:
        """The snapshot as indented, key-sorted JSON text."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def render_text(self) -> str:
        """Aligned one-line-per-metric text block for terminals."""
        lines = []
        width = max((len(name) for name in self._metrics), default=0)
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                if metric.count:
                    detail = (
                        f"count={snap['count']} mean={snap['mean']:.4g} "
                        f"p50={snap['p50']:.4g} p99={snap['p99']:.4g}"
                    )
                else:
                    detail = "count=0"
                lines.append(f"{name:<{width}}  histogram  {detail}")
            else:
                lines.append(
                    f"{name:<{width}}  {metric.kind:<9}  {metric.value:g}"
                )
        return "\n".join(lines)
