"""The observer seam between the pipeline and the instrumentation.

Pipeline stages never talk to a tracer or a metrics registry directly;
they call the tiny :class:`PipelineObserver` surface — ``span``,
``count``, ``gauge``, ``observe``, ``event`` — and callers decide what
backs it.  The default is :data:`NULL_OBSERVER`, whose every operation
is a no-op cheap enough to leave in hot paths, so uninstrumented runs
behave exactly as before.  :class:`TelemetryObserver` is the real
implementation bundling a :class:`~repro.obs.tracing.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry` and a logger.

The :func:`instrumented` decorator wraps a function or method in a span
named after it, resolving the observer from an ``observer`` keyword
argument or from the bound instance's ``_observer`` attribute.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, ContextManager, Protocol, TypeVar, runtime_checkable

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

_F = TypeVar("_F", bound=Callable[..., Any])


@runtime_checkable
class PipelineObserver(Protocol):
    """What an instrumented stage may emit."""

    def span(self, name: str, **attributes: Any) -> ContextManager[Any]:
        """Open a nested timed region named ``name``."""

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increase the named counter."""

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge."""

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""

    def event(self, message: str, **fields: Any) -> None:
        """Emit a progress event (a structured log line)."""


class _NullSpan:
    """Reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NoopObserver:
    """Observer that discards everything (the default everywhere)."""

    __slots__ = ()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, message: str, **fields: Any) -> None:
        pass


#: Shared no-op instance; stages default to this.
NULL_OBSERVER = NoopObserver()


def resolve_observer(observer: PipelineObserver | None) -> PipelineObserver:
    """``observer`` if given, else the shared no-op."""
    return observer if observer is not None else NULL_OBSERVER


class TelemetryObserver:
    """Observer backed by a tracer, a metrics registry and a logger."""

    def __init__(self, *, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 logger=None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = logger if logger is not None else get_logger("pipeline")

    def span(self, name: str, **attributes: Any) -> ContextManager[Any]:
        self.logger.debug("stage %s started", name)
        return self.tracer.span(name, **attributes)

    def count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def event(self, message: str, **fields: Any) -> None:
        self.logger.info(message, extra={"fields": fields})

    def telemetry_section(self) -> dict[str, Any]:
        """Stage timings + metric snapshot, for report embedding."""
        return {
            "stage_timings": self.tracer.stage_timings(),
            "metrics": self.metrics.snapshot(),
        }


def instrumented(stage: str | None = None, *,
                 observer_attr: str = "_observer") -> Callable[[_F], _F]:
    """Wrap a callable in a span named ``stage`` (default: its name).

    The observer is taken from the call's ``observer`` keyword argument
    when present (without consuming it), else from ``observer_attr`` on
    the first positional argument (``self`` for methods), else the
    no-op.  Functions stay usable completely uninstrumented.
    """

    def decorate(func: _F) -> _F:
        span_name = stage if stage is not None else func.__name__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            observer = kwargs.get("observer")
            if observer is None and args:
                observer = getattr(args[0], observer_attr, None)
            observer = resolve_observer(observer)
            with observer.span(span_name):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
