"""Small timing helpers shared by the CLIs and the experiment harness.

:func:`timeit` measures a block's wall and CPU time without requiring a
tracer; it is what the experiment registry uses to print per-experiment
duration lines::

    with timeit("fig8") as timer:
        run_experiment("fig8")
    print(f"[{timer.label}] {format_duration(timer.wall_s)}")
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class TimeitResult:
    """Filled in when the :func:`timeit` block exits."""

    label: str = ""
    wall_s: float = 0.0
    cpu_s: float = 0.0

    @property
    def elapsed(self) -> float:
        """Alias for ``wall_s``."""
        return self.wall_s


@contextmanager
def timeit(label: str = "") -> Iterator[TimeitResult]:
    """Measure the wall and CPU time of the enclosed block.

    The yielded :class:`TimeitResult` is populated on exit — including
    when the block raises, so cleanup code can still report the time
    spent before the failure.
    """
    result = TimeitResult(label=label)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        yield result
    finally:
        result.wall_s = time.perf_counter() - wall_start
        result.cpu_s = time.process_time() - cpu_start


def format_duration(seconds: float) -> str:
    """Human-readable duration: ``431 ms``, ``2.41 s``, ``3 min 12 s``."""
    if seconds < 0:
        return f"-{format_duration(-seconds)}"
    if seconds < 0.001:
        return f"{seconds * 1_000_000.0:.0f} µs"
    if seconds < 1.0:
        return f"{seconds * 1000.0:.0f} ms"
    if seconds < 60.0:
        return f"{seconds:.2f} s"
    minutes, remainder = divmod(seconds, 60.0)
    return f"{int(minutes)} min {remainder:.0f} s"
