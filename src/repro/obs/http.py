"""Zero-dependency HTTP surface for live telemetry.

A long-running scorer must expose its own health, not just print a
report at exit.  :class:`TelemetryHTTPServer` wraps the stdlib
``ThreadingHTTPServer`` around a :class:`~repro.obs.metrics.MetricsRegistry`
and serves the conventional operator endpoints:

``/metrics``
    Prometheus text exposition (:func:`~repro.obs.export.render_prometheus`);
    point a scrape job here.
``/health``
    Liveness JSON from the caller's ``health`` callable.  Responds 200
    when the payload's ``status`` is ``"ok"``, 503 otherwise — a load
    balancer needs only the code.
``/status``
    Free-form JSON from the caller's ``status`` callable (fleet gauges,
    flight-recorder tail, ...).
``/recorder``
    The attached :class:`~repro.obs.recorder.FlightRecorder` ring as
    JSONL (404 when no recorder is attached).

Callers with write traffic (the serving daemon's ``/ingest``) register
POST handlers through ``post_routes`` — each maps a path to a callable
from ``(body, query)`` to an :class:`HttpReply`, so the daemon reuses
this one server for both telemetry and ingestion.

Every request increments the labeled ``telemetry_requests`` counter in
the served registry, so scrape traffic is itself observable.  The
server binds ``port=0`` by default — an ephemeral port, read back from
the :class:`ServerHandle` at :attr:`TelemetryHTTPServer.handle` —
which keeps tests and multi-instance hosts collision-free.  Requests
are served from daemon threads; the scoring thread never blocks on a
scrape.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Mapping
from urllib.parse import parse_qsl

from repro.errors import ObservabilityError
from repro.ioutil import atomic_write_text
from repro.obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder

#: Endpoint label values for the ``telemetry_requests`` counter; paths
#: outside this set count under ``other`` (bounded label cardinality).
_KNOWN_ENDPOINTS = ("/metrics", "/health", "/status", "/recorder")


@dataclass(frozen=True, slots=True)
class ServerHandle:
    """Where a running HTTP server is actually bound.

    The single documented place a caller reads the live address from:
    ``port=0`` requests an ephemeral port, and the handle carries the
    kernel's pick.  Both the daemon and ``repro-serve watch`` publish
    their address through :meth:`write_port_file` instead of formatting
    port files by hand, so every port file in the system has the same
    one-line ``port\\n`` format.
    """

    host: str
    port: int

    @property
    def url(self) -> str:
        """Base URL of the bound server (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def write_port_file(self, path: str | Path) -> Path:
        """Write the bound port (one line, newline-terminated) to ``path``.

        Returns the path written.  Orchestration scripts poll this file
        to learn the ephemeral port of a service they just launched —
        the write is atomic (temp file + rename), so a poller can never
        observe a half-written port.
        """
        return atomic_write_text(Path(path), f"{self.port}\n", fsync=False)


@dataclass(frozen=True, slots=True)
class HttpReply:
    """What a POST route handler returns: status, body, headers.

    ``headers`` carries extras beyond ``Content-Type`` /
    ``Content-Length`` (the server always sets those) — the daemon uses
    it for ``Retry-After`` on backpressure replies.
    """

    status: int
    body: bytes
    content_type: str = "application/json; charset=utf-8"
    headers: tuple[tuple[str, str], ...] = field(default=())

    @classmethod
    def json(cls, status: int, payload: dict[str, Any],
             headers: tuple[tuple[str, str], ...] = ()) -> "HttpReply":
        """Build a JSON reply (sorted keys, newline-terminated)."""
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status=status, body=body, headers=headers)


#: A POST route handler: ``(body, query) -> HttpReply``.  ``query`` is
#: the parsed query string (last value wins for repeated keys).
PostHandler = Callable[[bytes, dict[str, str]], HttpReply]


def _default_health() -> dict[str, Any]:
    """Fallback liveness payload when the caller supplies none."""
    return {"status": "ok"}


class _TelemetryRequestHandler(BaseHTTPRequestHandler):
    """Routes GETs/POSTs to the telemetry endpoints; logs via repro.obs."""

    server_version = "repro-telemetry/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 — http.server's contract
        server: "_BoundServer" = self.server  # type: ignore[assignment]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        endpoint = path if path in _KNOWN_ENDPOINTS else "other"
        server.registry.counter(
            "telemetry_requests",
            labels={"endpoint": endpoint.lstrip("/")},
        ).inc()
        if path == "/metrics":
            body = render_prometheus(server.registry).encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/health":
            payload = server.health()
            code = 200 if payload.get("status") == "ok" else 503
            self._reply_json(code, payload)
        elif path == "/status":
            self._reply_json(200, server.status())
        elif path == "/recorder":
            if server.recorder is None:
                self._reply_json(404, {"error": "no flight recorder"})
            else:
                lines = [json.dumps(event, sort_keys=True)
                         for event in server.recorder.to_dicts()]
                body = ("\n".join(lines) + ("\n" if lines else "")
                        ).encode("utf-8")
                self._reply(200, "application/jsonl; charset=utf-8", body)
        else:
            self._reply_json(404, {"error": "not found", "path": path})

    def do_POST(self) -> None:  # noqa: N802 — http.server's contract
        server: "_BoundServer" = self.server  # type: ignore[assignment]
        path, _, raw_query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        handler = server.post_routes.get(path)
        endpoint = path if handler is not None else "other"
        server.registry.counter(
            "telemetry_requests",
            labels={"endpoint": endpoint.lstrip("/") or "other"},
        ).inc()
        if handler is None:
            self._reply_json(404, {"error": "not found", "path": path})
            return
        length = int(self.headers.get("Content-Length", "0") or "0")
        body = self.rfile.read(length) if length > 0 else b""
        query = dict(parse_qsl(raw_query))
        try:
            reply = handler(body, query)
        except Exception as error:
            # Route-handler crashes must not kill the connection thread
            # silently; reply 500 and leave the trace in the log.
            server.logger.error("POST %s handler failed: %s", path, error)
            self._reply_json(500, {"error": f"{type(error).__name__}: "
                                            f"{error}"})
            return
        self._reply(reply.status, reply.content_type, reply.body,
                    extra=reply.headers)

    def _reply(self, code: int, content_type: str, body: bytes,
               extra: tuple[tuple[str, str], ...] = ()) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, code: int, payload: dict[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._reply(code, "application/json; charset=utf-8", body)

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs through repro.obs.logging, not stderr."""
        self.server.logger.debug(  # type: ignore[attr-defined]
            "%s %s", self.address_string(), format % args)


class _BoundServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the telemetry providers."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 registry: MetricsRegistry,
                 health: Callable[[], dict[str, Any]],
                 status: Callable[[], dict[str, Any]],
                 recorder: FlightRecorder | None,
                 post_routes: Mapping[str, PostHandler]) -> None:
        self.registry = registry
        self.health = health
        self.status = status
        self.recorder = recorder
        self.post_routes = dict(post_routes)
        self.logger = get_logger("obs.http")
        super().__init__(address, _TelemetryRequestHandler)


class TelemetryHTTPServer:
    """The live telemetry plane's HTTP front: start, scrape, stop.

    Parameters
    ----------
    registry:
        Metrics served at ``/metrics`` (and incremented per request).
    health:
        Zero-argument callable returning the ``/health`` JSON payload;
        a ``status`` key other than ``"ok"`` turns the response 503.
    status:
        Zero-argument callable returning the ``/status`` JSON payload.
    recorder:
        Optional flight recorder served as JSONL at ``/recorder``.
    post_routes:
        Optional mapping of path to POST handler (``(body, query) ->
        HttpReply``); unknown POST paths answer 404.  Registered paths
        get their own ``telemetry_requests`` endpoint label.
    host / port:
        Bind address; ``port=0`` (default) picks an ephemeral port,
        readable from :attr:`handle` after construction.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 health: Callable[[], dict[str, Any]] | None = None,
                 status: Callable[[], dict[str, Any]] | None = None,
                 recorder: FlightRecorder | None = None,
                 post_routes: Mapping[str, PostHandler] | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        try:
            self._server = _BoundServer(
                (host, port), registry,
                health if health is not None else _default_health,
                status if status is not None else dict,
                recorder,
                post_routes if post_routes is not None else {},
            )
        except OSError as error:
            raise ObservabilityError(
                f"cannot bind telemetry server to {host}:{port}: {error}"
            ) from error
        self._thread: threading.Thread | None = None

    @property
    def handle(self) -> ServerHandle:
        """The bound address as a :class:`ServerHandle`."""
        return ServerHandle(host=self._server.server_address[0],
                            port=self._server.server_address[1])

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the ephemeral pick when constructed with 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the serving endpoints."""
        return self.handle.url

    def start(self) -> "TelemetryHTTPServer":
        """Serve in a daemon thread (idempotent); returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-telemetry-http", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and release the socket."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join()
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "TelemetryHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.stop()
        return False
