"""Section IV-C: RMSE comparison of the candidate signature models.

For Group 1 the paper compares Eq. (2), a first-order polynomial and the
revised second-order polynomial (RMSEs 0.24 / 0.14 / 0.06 — revised
second order wins); for Group 3 it compares Eq. (5), first order, revised
second order and the simplified third order (0.45 / 0.35 / 0.22 / 0.16 —
third order wins).  The shape target is the *ordering*, not the absolute
numbers.
"""

from __future__ import annotations

from repro.core.pipeline import CharacterizationReport
from repro.core.signature_models import compare_signature_models
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.tables import ascii_table

PAPER_WINNERS = {
    FailureType.LOGICAL: "revised_second_order",
    FailureType.BAD_SECTOR: "first_order",
    FailureType.HEAD: "simplified_third_order",
}


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Compare the candidate signature models by RMSE (Section IV-C)."""
    report = report if report is not None else default_report()
    rows = []
    data = {}
    for failure_type in FailureType:
        serial = report.categorization.centroid_of_type(failure_type)
        signature = report.signature_of(serial)
        t, s = signature.window.degradation_values()
        rmse_by_model = compare_signature_models(
            t, s, signature.window_size, failure_type
        )
        winner = min(rmse_by_model, key=lambda k: rmse_by_model[k])
        name = f"group{failure_type.paper_group_number}"
        data[name] = {
            "rmse": rmse_by_model,
            "winner": winner,
            "paper_winner": PAPER_WINNERS[failure_type],
        }
        for model_name, value in sorted(rmse_by_model.items()):
            rows.append((name, model_name, value,
                         "<- selected" if model_name == winner else ""))
    rendered = ascii_table(
        ("group", "model", "RMSE", ""), rows,
        title="Signature-model selection by RMSE (Section IV-C)",
    )
    return ExperimentResult(
        experiment_id="sig_models",
        title="Canonical signature model selection",
        paper_reference="winners: revised 2nd order (G1), 1st order (G2), "
                        "simplified 3rd order (G3)",
        data=data,
        rendered=rendered,
    )
