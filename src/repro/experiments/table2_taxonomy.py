"""Table II: properties and categories of disk failures.

The paper's headline taxonomy: logical failures 59.6%, bad-sector
failures 7.6%, read/write-head failures 32.8%, each with its distinctive
manifestation summary.
"""

from __future__ import annotations

from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.tables import ascii_table

PAPER_FRACTIONS = {
    FailureType.LOGICAL: 0.596,
    FailureType.BAD_SECTOR: 0.076,
    FailureType.HEAD: 0.328,
}


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Table II: properties and categories of disk failures."""
    report = report if report is not None else default_report()
    groups = report.categorization.groups

    by_type = {group.failure_type: group for group in groups.values()}
    rows = []
    fractions = {}
    for failure_type in FailureType:
        group = by_type[failure_type]
        fractions[failure_type] = group.population_fraction
        rows.append((
            f"Group {failure_type.paper_group_number}",
            f"{group.population_fraction:.1%}",
            f"(paper {PAPER_FRACTIONS[failure_type]:.1%})",
            failure_type.value,
        ))
    rendered = "\n".join([
        ascii_table(
            ("Failure Group", "Population", "Paper", "Failure Type"), rows,
            title="Table II: properties and categories of disk failures",
        ),
        "",
        *(f"Group {t.paper_group_number} ({t.value}): {by_type[t].properties}"
          for t in FailureType),
    ])
    return ExperimentResult(
        experiment_id="table2",
        title="Failure taxonomy and populations",
        paper_reference="logical 59.6%, bad sector 7.6%, head 32.8%",
        data={
            "fractions": {t.name: fractions[t] for t in FailureType},
            "counts": {t.name: by_type[t].n_records for t in FailureType},
        },
        rendered=rendered,
    )
