"""Figure 4: the three failure groups in principal-component space.

The paper's scatter shows 258 / 33 / 142 failure records in groups with
distinctive manifestations, separable in the first two principal
components of the 30-feature space.
"""

from __future__ import annotations

from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.ml.pca import PCA
from repro.reporting.figures import ascii_scatter


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 4: the three failure groups in principal-component space."""
    report = report if report is not None else default_report()
    records = report.records
    categorization = report.categorization

    pca = PCA(n_components=2)
    projected = pca.fit_transform(records.features)

    points = {}
    counts = {}
    for failure_type in FailureType:
        cluster_id = categorization.cluster_of_type(failure_type)
        mask = categorization.labels == cluster_id
        group_name = f"group{failure_type.paper_group_number}"
        points[group_name] = (projected[mask, 0], projected[mask, 1])
        counts[group_name] = int(mask.sum())

    rendered = "\n".join([
        ascii_scatter(
            points, height=18, width=64,
            title="Figure 4: failure groups in PC1/PC2 space",
        ),
        "",
        "group sizes: " + ", ".join(f"{k}={v}" for k, v in counts.items())
        + "  (paper: group1=258, group2=33, group3=142)",
    ])
    return ExperimentResult(
        experiment_id="fig4",
        title="PCA scatter of failure groups",
        paper_reference="three separable groups of 258 / 33 / 142 records",
        data={
            "projections": points,
            "counts": counts,
            "explained_variance_ratio": pca.explained_variance_ratio_,
        },
        rendered=rendered,
    )
