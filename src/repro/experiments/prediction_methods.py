"""Extension: alternative degradation-prediction methods (Section VI).

The paper's future work: "We will test more prediction methods and
evaluate their performance for disk degradation prediction."  This
experiment runs that comparison under the exact Table III protocol —
signature targets, 10x good-sample mixing, 70/30 split — swapping the
regression tree for a distance-weighted k-NN regressor and a ridge
linear model.
"""

from __future__ import annotations

import numpy as np

from repro.core.prediction import TARGET_RANGE, DegradationPredictor
from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.data.splits import train_test_split
from repro.experiments.common import ExperimentResult, default_report
from repro.ml.knn import KNNRegressor
from repro.ml.linear import RidgeRegressor
from repro.ml.metrics import rmse
from repro.ml.tree import RegressionTree
from repro.reporting.tables import ascii_table


def _model_factories():
    return {
        "regression_tree": lambda: RegressionTree(max_depth=8,
                                                  min_samples_leaf=10),
        "knn_5": lambda: KNNRegressor(n_neighbors=5),
        "ridge_linear": lambda: RidgeRegressor(),
    }


#: Row cap applied before splitting; k-NN's brute-force prediction is
#: quadratic in sample count, so the comparison runs on a (seeded)
#: subsample large enough for stable error estimates.
MAX_SAMPLES = 30_000


def run(report: CharacterizationReport | None = None, *,
        seed: int = 17) -> ExperimentResult:
    """Compare alternative degradation-prediction methods (Section VI)."""
    report = report if report is not None else default_report()
    predictor = DegradationPredictor(seed=seed)

    rows = []
    data: dict[str, dict[str, float]] = {}
    for failure_type in FailureType:
        training_set = predictor.build_training_set(
            report.dataset, report.categorization, failure_type
        )
        features = training_set.features
        targets = training_set.targets
        if targets.shape[0] > MAX_SAMPLES:
            keep = np.random.default_rng(seed).choice(
                targets.shape[0], size=MAX_SAMPLES, replace=False
            )
            features = features[keep]
            targets = targets[keep]
        split = train_test_split(
            targets.shape[0], train_fraction=0.7,
            rng=np.random.default_rng(seed),
        )
        x_train, x_test, y_train, y_test = split.select(features, targets)
        group = f"group{failure_type.paper_group_number}"
        data[group] = {}
        for name, factory in _model_factories().items():
            model = factory().fit(x_train, y_train)
            error = rmse(y_test, model.predict(x_test)) / TARGET_RANGE
            data[group][name] = error
            rows.append((group, name, f"{error:.2%}"))

    # Who wins per group?
    winners = {
        group: min(errors, key=lambda name: errors[name])
        for group, errors in data.items()
    }
    rendered = "\n".join([
        ascii_table(
            ("group", "method", "error rate"), rows,
            title="Extension: degradation-prediction methods under the "
                  "Table III protocol",
        ),
        "",
        "winners: " + ", ".join(f"{g}={w}" for g, w in winners.items()),
        "note: nonlinear methods (tree, k-NN) should beat the linear model "
        "— the signatures are polynomial in time, not linear in the "
        "attributes",
    ])
    return ExperimentResult(
        experiment_id="prediction_methods",
        title="Alternative degradation predictors",
        paper_reference="Section VI future work: test more prediction "
                        "methods",
        data={"errors": data, "winners": winners},
        rendered=rendered,
    )
