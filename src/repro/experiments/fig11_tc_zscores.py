"""Figure 11: temporal z-scores of drive temperature (TC).

The paper: all groups run hotter than good drives (negative z-scores of
the TC health value), and "the temperature of drives in Group 1 is the
highest compared with the other two groups and this persists throughout
the 20-day period" — the evidence for the thermal cause of logical
failures.
"""

from __future__ import annotations

import numpy as np

from repro.core.diagnosis import temporal_group_z_scores
from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.figures import ascii_series


def run(report: CharacterizationReport | None = None,
        attribute: str = "TC") -> ExperimentResult:
    """Render Figure 11: temporal z-scores of drive temperature (TC)."""
    report = report if report is not None else default_report()
    by_group = temporal_group_z_scores(
        report.dataset, report.categorization, attribute
    )
    lags = next(iter(by_group.values())).lags_hours.astype(np.float64)
    series = {
        f"group{scores.failure_type.paper_group_number}": scores.z_scores
        for scores in by_group.values()
    }
    means = {
        f"group{scores.failure_type.paper_group_number}": scores.mean_z()
        for scores in by_group.values()
    }
    most_negative = min(means, key=lambda k: means[k])
    rendered = "\n".join([
        ascii_series(
            lags, series, height=14, width=70,
            title=f"Figure 11: temporal z-scores of {attribute} "
                  "(hours before failure)",
        ),
        "",
        "mean z per group: " + ", ".join(
            f"{name}={value:.1f}" for name, value in sorted(means.items())
        ),
        f"most negative (hottest) group: {most_negative} (paper: group1)",
    ])
    return ExperimentResult(
        experiment_id="fig11",
        title="Temporal z-scores of drive temperature",
        paper_reference="all groups negative; Group 1 most negative across "
                        "the 20-day horizon",
        data={"lags": lags, "series": series, "means": means,
              "most_negative": most_negative},
        rendered=rendered,
    )
