"""Figure 3: average within-group distance vs number of clusters.

The paper sweeps k = 1..10 and finds "three groups produce the best
clustering results" — the elbow of the curve.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import CharacterizationReport
from repro.experiments.common import ExperimentResult, default_report
from repro.ml.kmeans import elbow_analysis
from repro.reporting.figures import ascii_series


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 3: average within-group distance vs number of clusters."""
    report = report if report is not None else default_report()
    analysis = elbow_analysis(report.records.features, max_clusters=10)
    counts, distances = analysis.as_series()
    rendered = "\n".join([
        ascii_series(
            counts.astype(np.float64), {"distance": distances},
            height=12, width=60,
            title="Figure 3: mean within-cluster distance vs cluster count",
        ),
        "",
        f"selected elbow: k = {analysis.best_k} (paper: 3)",
    ])
    return ExperimentResult(
        experiment_id="fig3",
        title="Cluster-count elbow analysis",
        paper_reference="elbow at k = 3",
        data={
            "cluster_counts": analysis.cluster_counts,
            "average_distances": analysis.average_distances,
            "best_k": analysis.best_k,
        },
        rendered=rendered,
    )
