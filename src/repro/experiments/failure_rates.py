"""Extension: placing the fleet in the related-work failure-rate context.

Section II-B surveys field failure rates: Schroeder & Gibson's annual
replacement rates "typically exceeded 1%, with 2-4% common and up to 13%
observed on some systems"; Gray's 3.3-6%; the Internet Archive's 2-6%.
The studied fleet lost 433 of 23,395 drives in eight weeks — 1.85% per
period, which annualizes to ~12%, at the top of that range.

This experiment computes the simulated fleet's AFR and fits a Weibull to
the within-period failure times.  Note the clock: times are measured
from the start of the collection window, not from drive birth, so the
fitted shape describes the observation-period hazard mix (the
infant-mortality excess of Figure 1 shows up as the early-failure mass,
not necessarily as shape < 1).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, default_fleet
from repro.reporting.tables import ascii_table
from repro.sim.fleet import FleetResult
from repro.stats.afr import annualized_failure_rate, fit_weibull

#: The paper's own population, for the reference row.
PAPER_FAILED, PAPER_DRIVES, PAPER_PERIOD_HOURS = 433, 23395, 1344


def run(fleet: FleetResult | None = None) -> ExperimentResult:
    """Place the fleet's failure rates in the related-work context."""
    fleet = fleet if fleet is not None else default_fleet()
    summary = fleet.dataset.summary()
    period = fleet.config.period_hours
    afr = annualized_failure_rate(summary.n_failed, summary.n_drives, period)
    paper_afr = annualized_failure_rate(PAPER_FAILED, PAPER_DRIVES,
                                        PAPER_PERIOD_HOURS)

    failure_hours = np.array([
        profile.failure_hour for profile in fleet.dataset.failed_profiles
    ], dtype=np.float64)
    weibull = fit_weibull(failure_hours)

    rows = [
        ("simulated fleet", summary.n_drives, summary.n_failed,
         f"{summary.failure_rate:.2%}", f"{afr:.1%}"),
        ("paper's fleet", PAPER_DRIVES, PAPER_FAILED,
         f"{PAPER_FAILED / PAPER_DRIVES:.2%}", f"{paper_afr:.1%}"),
    ]
    hazard_reading = ("infant-mortality-dominated (shape < 1)"
                      if weibull.hazard_is_decreasing
                      else "wear-out-dominated (shape > 1)"
                      if weibull.hazard_is_increasing
                      else "constant hazard")
    rendered = "\n".join([
        ascii_table(
            ("fleet", "drives", "failed", "period rate", "AFR"), rows,
            title="Failure rates in the related-work context "
                  "(field studies: 1-13% AFR)",
        ),
        "",
        f"Weibull fit of failure times: shape {weibull.shape:.2f}, "
        f"scale {weibull.scale:.0f} h -> {hazard_reading}",
    ])
    return ExperimentResult(
        experiment_id="failure_rates",
        title="AFR and failure-time distribution",
        paper_reference="Section II-B field rates 1-13% AFR; infant "
                        "mortality per Xin et al.",
        data={
            "afr": afr,
            "paper_afr": paper_afr,
            "weibull_shape": weibull.shape,
            "weibull_scale": weibull.scale,
        },
        rendered=rendered,
    )
