"""Capstone extension: RAID data-loss risk and signature-driven protection.

Closes the loop on the paper's motivation and implications:

* Section I: "in RAID-5 systems, one drive failure with any other sector
  error will result in data loss";
* Section V: the degradation signatures let operators predict failures
  "even in their early stages" and act before the drive dies.

The experiment measures the data-loss rate of RAID groups drawn from the
simulated fleet under three policies — reactive RAID-5, reactive RAID-6,
and RAID-5 with signature-driven proactive migration (drives are cloned
once the degradation monitor raises WATCH, provided the warning arrives
early enough).  It also reports the median warning lead per failure
group: logical failures, whose degradation window is a few hours, are
the hard case — exactly why the paper steers their mitigation toward
thermal management rather than prediction.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import CharacterizationReport
from repro.core.prediction import DegradationPredictor
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_fleet, default_report
from repro.raid.array import RaidLevel
from repro.raid.reliability import (
    RaidReliabilityAnalysis,
    drive_states_from_fleet,
)
from repro.reporting.tables import ascii_table
from repro.sim.fleet import FleetResult

#: Degradation stage at which the monitor warns.
WATCH_THRESHOLD = -0.05


def compute_warning_leads(fleet: FleetResult,
                          report: CharacterizationReport, *,
                          seed: int = 17) -> dict[str, float]:
    """Hours of advance warning the degradation models give per failed drive.

    Each failed drive's (normalized) profile is scored by every group's
    trained tree; the warning fires at the first sample whose most
    pessimistic stage drops below the WATCH threshold.
    """
    predictor = DegradationPredictor(seed=seed)
    predictor.evaluate_all(report.dataset, report.categorization)
    trees = [predictor.tree_for(t) for t in FailureType]

    leads: dict[str, float] = {}
    for profile in report.dataset.failed_profiles:
        stages = np.min(
            np.vstack([tree.predict(profile.matrix) for tree in trees]),
            axis=0,
        )
        warned = np.flatnonzero(stages <= WATCH_THRESHOLD)
        if warned.shape[0]:
            first_hour = int(profile.hours[warned[0]])
            leads[profile.serial] = float(profile.failure_hour - first_hour)
    return leads


def run(fleet: FleetResult | None = None,
        report: CharacterizationReport | None = None, *,
        n_groups: int = 20000, seed: int = 99) -> ExperimentResult:
    """Quantify RAID data-loss risk with and without signature-driven protection."""
    fleet = fleet if fleet is not None else default_fleet()
    report = report if report is not None else default_report()
    leads = compute_warning_leads(fleet, report)
    drives = drive_states_from_fleet(fleet, warning_leads=leads)
    analysis = RaidReliabilityAnalysis(drives, n_groups=n_groups, seed=seed)

    policies = [
        analysis.evaluate(RaidLevel.RAID5, proactive=False),
        analysis.evaluate(RaidLevel.RAID6, proactive=False),
        analysis.evaluate(RaidLevel.RAID5, proactive=True),
    ]
    rows = [
        (result.policy, f"{result.loss_rate:.3%}",
         result.n_double_failure_losses, result.n_latent_error_losses,
         result.n_proactive_migrations)
        for result in policies
    ]

    # Warning lead per failure group: the operator's actionable window.
    lead_rows = []
    median_leads = {}
    for failure_type in FailureType:
        group_leads = [
            leads[serial]
            for serial in report.categorization.serials_of_type(failure_type)
            if serial in leads
        ]
        median = float(np.median(group_leads)) if group_leads else 0.0
        median_leads[f"group{failure_type.paper_group_number}"] = median
        lead_rows.append((
            f"group{failure_type.paper_group_number}",
            len(group_leads),
            f"{median:.0f} h",
        ))

    loss_rates = {result.policy: result.loss_rate for result in policies}
    rendered = "\n".join([
        ascii_table(
            ("policy", "data-loss rate", "double-failure", "latent-error",
             "migrations"), rows,
            title=f"RAID protection policies over {n_groups} sampled "
                  "8-drive groups",
        ),
        "",
        ascii_table(
            ("group", "warned drives", "median warning lead"), lead_rows,
            title="Signature warning lead per failure group",
        ),
        "",
        "reactive RAID-5 loses data through exactly the Section I channel "
        "(single failure + latent sector error); RAID-6 and proactive "
        "migration each remove most of it.  Logical failures offer the "
        "least warning — the paper's case for thermal mitigation.",
    ])
    return ExperimentResult(
        experiment_id="raid_protection",
        title="RAID data-loss risk and proactive protection",
        paper_reference="Section I motivation + Section V implications",
        data={
            "loss_rates": loss_rates,
            "median_leads": median_leads,
            "policies": {result.policy: result for result in policies},
        },
        rendered=rendered,
    )
