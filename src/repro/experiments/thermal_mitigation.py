"""Extension: what thermal mitigation buys (Section V-A made quantitative).

The paper's diagnosis finds "disk temperature is the most important
factor causing logical failure" and recommends cooling technologies
(SuperCaddy, rack temperature control, thermal-aware scheduling) "to
reduce the number of logical failures, which will in turn improve the
storage system's reliability".

This experiment quantifies that recommendation under the simulator's
causal thermal model (the logical-failure hazard grows ~9% per degree of
inlet temperature, Arrhenius-like after Sankar et al.): the same fleet
is simulated at several room temperatures and the failure counts per
ground-truth mode are compared.  Cooling cuts logical failures steeply
while bad-sector and head failures — wear-driven, not heat-driven — stay
flat.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import ExperimentResult
from repro.reporting.tables import ascii_table
from repro.sim.config import FleetConfig
from repro.sim.failure_modes import FailureMode
from repro.sim.fleet import simulate_fleet

#: Room temperatures swept (deg C).  24 is the reference datacenter.
INLET_SWEEP_C = (20.0, 24.0, 28.0, 32.0)


def run(*, n_drives: int = 4000, seed: int = 42) -> ExperimentResult:
    """Quantify what thermal mitigation buys (Section V-A)."""
    rows = []
    counts_by_temp: dict[float, dict[str, int]] = {}
    for inlet in INLET_SWEEP_C:
        config = replace(FleetConfig(n_drives=n_drives, seed=seed),
                         inlet_temperature_c=inlet)
        fleet = simulate_fleet(config)
        modes = [m for m in fleet.true_modes.values() if m.is_failure]
        counts = {
            "logical": modes.count(FailureMode.LOGICAL),
            "bad_sector": modes.count(FailureMode.BAD_SECTOR),
            "head": modes.count(FailureMode.HEAD),
        }
        counts_by_temp[inlet] = counts
        rows.append((
            f"{inlet:.0f} C", sum(counts.values()),
            counts["logical"], counts["bad_sector"], counts["head"],
        ))

    reference = counts_by_temp[24.0]
    coolest = counts_by_temp[INLET_SWEEP_C[0]]
    hottest = counts_by_temp[INLET_SWEEP_C[-1]]
    logical_reduction = (
        1.0 - coolest["logical"] / reference["logical"]
        if reference["logical"] else 0.0
    )
    rendered = "\n".join([
        ascii_table(
            ("inlet", "total failures", "logical", "bad sector", "head"),
            rows,
            title=f"Thermal mitigation sweep, {n_drives}-drive fleet",
        ),
        "",
        f"cooling from 24 C to {INLET_SWEEP_C[0]:.0f} C removes "
        f"{logical_reduction:.0%} of logical failures; heating to "
        f"{INLET_SWEEP_C[-1]:.0f} C grows them "
        f"{hottest['logical'] / reference['logical']:.1f}x while "
        "wear-driven failures stay flat — the Section V-A recommendation, "
        "quantified under the simulator's Arrhenius-like hazard model.",
    ])
    return ExperimentResult(
        experiment_id="thermal_mitigation",
        title="Thermal mitigation of logical failures",
        paper_reference="Section V-A: cooling technologies reduce logical "
                        "failures and improve reliability dramatically",
        data={"counts_by_temp": counts_by_temp,
              "logical_reduction_at_coolest": logical_reduction},
        rendered=rendered,
    )
