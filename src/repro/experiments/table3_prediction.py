"""Table III: RMSE and error rate of disk degradation prediction.

The paper reports RMSE 0.216 / 0.114 / 0.129 and error rates 10.8% /
5.7% / 6.4% for Groups 1-3 — Group 1 (logical failures, SMART-quiet)
being the hardest to predict.  The shape target is that ordering.
"""

from __future__ import annotations

from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.tables import ascii_table

PAPER_RMSE = {
    FailureType.LOGICAL: 0.216,
    FailureType.BAD_SECTOR: 0.114,
    FailureType.HEAD: 0.129,
}


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Table III: RMSE and error rate of disk degradation prediction."""
    report = report if report is not None else default_report()
    predictions = report.predictions
    if not predictions:
        raise ExperimentError(
            "the supplied report was produced with run_prediction=False"
        )
    rows = []
    data = {}
    for failure_type in FailureType:
        prediction = predictions[failure_type]
        name = f"group{failure_type.paper_group_number}"
        data[name] = {
            "rmse": prediction.rmse,
            "error_rate": prediction.error_rate,
            "window": prediction.window,
        }
        rows.append((
            name, prediction.window, prediction.rmse,
            f"{prediction.error_rate:.1%}",
            PAPER_RMSE[failure_type],
        ))
    hardest = max(data, key=lambda k: data[k]["error_rate"])
    rendered = "\n".join([
        ascii_table(
            ("group", "d", "RMSE", "error rate", "paper RMSE"), rows,
            title="Table III: degradation-prediction quality per group",
        ),
        "",
        f"hardest group: {hardest} (paper: group1, logical failures)",
    ])
    return ExperimentResult(
        experiment_id="table3",
        title="Degradation prediction RMSE / error rates",
        paper_reference="RMSE 0.216/0.114/0.129; error 10.8%/5.7%/6.4%; "
                        "Group 1 hardest",
        data={**data, "hardest": hardest},
        rendered=rendered,
    )
