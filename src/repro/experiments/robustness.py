"""Extension: robustness of the categorization across fleets.

An "early experience" paper invites the question: does the approach
survive a different sample of the same population?  This experiment
re-runs categorization on independently seeded fleets and reports the
accuracy distribution against the simulator's ground truth and the
spread of the recovered group mixture — evidence the pipeline's
structure discovery is not an artifact of one lucky draw.
"""

from __future__ import annotations

import numpy as np

from repro.core.categorize import FailureCategorizer
from repro.core.records import build_failure_records
from repro.core.taxonomy import FailureType
from repro.core.validate import validate_categorization
from repro.experiments.common import ExperimentResult
from repro.reporting.tables import ascii_table
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet

DEFAULT_SEEDS = (3, 17, 42, 99, 123)


def run(*, n_drives: int = 2500,
        seeds: tuple[int, ...] = DEFAULT_SEEDS) -> ExperimentResult:
    """Check the categorization's robustness across fleets."""
    rows = []
    accuracies = []
    logical_shares = []
    for seed in seeds:
        fleet = simulate_fleet(FleetConfig(n_drives=n_drives, seed=seed))
        records = build_failure_records(fleet.dataset.normalize())
        categorization = FailureCategorizer(
            n_clusters=3, seed=seed
        ).categorize(records)
        report = validate_categorization(fleet, categorization)
        logical = categorization.groups[
            categorization.cluster_of_type(FailureType.LOGICAL)
        ].population_fraction
        accuracies.append(report.accuracy)
        logical_shares.append(logical)
        rows.append((
            seed, report.n_drives, f"{report.accuracy:.1%}",
            f"{logical:.1%}",
            f"{report.recall(FailureType.BAD_SECTOR):.0%}",
        ))

    accuracy_mean = float(np.mean(accuracies))
    accuracy_min = float(np.min(accuracies))
    rendered = "\n".join([
        ascii_table(
            ("seed", "failed drives", "accuracy", "logical share",
             "G2 recall"), rows,
            title=f"Categorization robustness over {len(seeds)} fleets "
                  f"({n_drives} drives each)",
        ),
        "",
        f"accuracy: mean {accuracy_mean:.1%}, worst {accuracy_min:.1%}; "
        f"logical share spread "
        f"{min(logical_shares):.1%}..{max(logical_shares):.1%} "
        f"(paper: 59.6%)",
    ])
    return ExperimentResult(
        experiment_id="robustness",
        title="Categorization robustness across fleets",
        paper_reference="the approach should not depend on one lucky "
                        "sample of the population",
        data={
            "accuracies": accuracies,
            "logical_shares": logical_shares,
            "mean_accuracy": accuracy_mean,
            "min_accuracy": accuracy_min,
        },
        rendered=rendered,
    )
