"""Crash-safe checkpointing of experiment sweeps.

A full ``--all`` sweep at paper scale runs for a long time; losing the
machine 25 experiments in should not mean re-running 25 experiments.
:class:`CheckpointStore` persists each finished experiment as one small
JSON file so an interrupted sweep resumes exactly where it stopped:

* **Atomic** — files are written to a temp name and ``os.replace``\\ d
  into place, so a kill mid-write leaves either the previous state or
  the complete new file, never a torn one.
* **Scale-keyed** — every checkpoint records the fleet scale
  (``n_drives``, ``seed``) it was produced under; a checkpoint from a
  different scale is ignored rather than silently reused.
* **Self-validating** — unreadable, truncated or schema-mismatched
  files count as *missing* (the experiment simply re-runs); corruption
  can cost time but never correctness.

Only successful results are checkpointed.  A failed experiment leaves
no file, so ``--resume`` retries it.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CheckpointError
from repro.experiments.common import ExperimentResult

#: Version written into every checkpoint; bump on breaking changes.
CHECKPOINT_SCHEMA = 1

_SUFFIX = ".checkpoint.json"


@dataclass(frozen=True, slots=True)
class ExperimentFailure:
    """A recorded (non-fatal) experiment failure under ``--keep-going``."""

    experiment_id: str
    error_type: str
    message: str

    def __str__(self) -> str:
        return (f"== {self.experiment_id}: FAILED ==\n"
                f"{self.error_type}: {self.message}")


class CheckpointStore:
    """Per-experiment JSON checkpoints under one directory.

    Checkpoints capture the *rendered* artifact (id, title, paper
    reference, rendering, wall time) — everything the CLI prints and
    archives — not the in-memory ``data`` payload, which may hold
    arbitrary Python objects.  Restored results therefore render
    byte-identically but carry an empty ``data`` dict.
    """

    def __init__(self, directory: str | Path, *, n_drives: int,
                 seed: int) -> None:
        self._dir = Path(directory)
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CheckpointError(
                f"cannot create checkpoint directory {self._dir}: {error}"
            ) from error
        self._n_drives = int(n_drives)
        self._seed = int(seed)

    @property
    def directory(self) -> Path:
        return self._dir

    def path_for(self, experiment_id: str) -> Path:
        return self._dir / f"{experiment_id}{_SUFFIX}"

    def store(self, result: ExperimentResult, wall_s: float) -> Path:
        """Atomically persist one finished experiment."""
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "n_drives": self._n_drives,
            "seed": self._seed,
            "experiment_id": result.experiment_id,
            "title": result.title,
            "paper_reference": result.paper_reference,
            "rendered": result.rendered,
            "wall_s": float(wall_s),
        }
        path = self.path_for(result.experiment_id)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self._dir, prefix=f".{result.experiment_id}-", suffix=".tmp",
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except OSError as error:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise CheckpointError(
                f"cannot write checkpoint for {result.experiment_id!r}: "
                f"{error}"
            ) from error
        return path

    def load(self, experiment_id: str
             ) -> tuple[ExperimentResult, float] | None:
        """Restore one experiment, or ``None`` if absent/invalid/stale."""
        path = self.path_for(experiment_id)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            return None
        if (payload.get("n_drives") != self._n_drives
                or payload.get("seed") != self._seed):
            return None
        if payload.get("experiment_id") != experiment_id:
            return None
        try:
            result = ExperimentResult(
                experiment_id=str(payload["experiment_id"]),
                title=str(payload["title"]),
                paper_reference=str(payload["paper_reference"]),
                rendered=str(payload["rendered"]),
            )
            wall_s = float(payload["wall_s"])
        except (KeyError, TypeError, ValueError):
            return None
        return result, wall_s

    def completed_ids(self) -> set[str]:
        """Experiment ids with a valid checkpoint at this store's scale."""
        completed = set()
        for path in sorted(self._dir.glob(f"*{_SUFFIX}")):
            experiment_id = path.name[: -len(_SUFFIX)]
            if self.load(experiment_id) is not None:
                completed.add(experiment_id)
        return completed
