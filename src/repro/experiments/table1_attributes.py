"""Table I: the disk health attributes selected for characterization."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.reporting.tables import ascii_table
from repro.smart.attributes import ATTRIBUTE_REGISTRY


def run() -> ExperimentResult:
    """Render Table I: the disk health attributes selected for characterization."""
    rows = [
        (spec.symbol, spec.name,
         f"{spec.kind.value}, {spec.form.value}")
        for spec in ATTRIBUTE_REGISTRY
    ]
    rendered = ascii_table(
        ("Symbol", "Attribute Name", "Type"), rows,
        title="Table I: disk health attributes selected for characterization",
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Selected SMART attributes",
        paper_reference="12 attributes: 10 R/W health values + 2 raw counters "
                        "+ POH/TC environmental",
        data={
            "n_attributes": len(ATTRIBUTE_REGISTRY),
            "symbols": [spec.symbol for spec in ATTRIBUTE_REGISTRY],
        },
        rendered=rendered,
    )
