"""Ablation: clustering feature set — plain values vs the 30-feature set.

The paper augments the ten R/W attribute values with a trailing standard
deviation and change rate each (30 features) before clustering.  This
ablation clusters with and without the derived statistics and scores both
against the simulator's ground-truth failure modes — quantifying what the
derived features buy.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import build_failure_records
from repro.core.taxonomy import classify_groups
from repro.experiments.common import ExperimentResult, default_fleet
from repro.ml.kmeans import KMeans
from repro.ml.metrics import cluster_purity
from repro.reporting.tables import ascii_table
from repro.sim.fleet import FleetResult


def run(fleet: FleetResult | None = None, *, seed: int = 0) -> ExperimentResult:
    """Run the feature-set ablation (plain values vs the 30-feature set)."""
    fleet = fleet if fleet is not None else default_fleet()
    dataset = fleet.dataset.normalize()
    records = build_failure_records(dataset)
    truth = np.array([
        fleet.true_modes[serial].value for serial in records.serials
    ])

    # Full 30-feature set vs the ten plain attribute values.
    value_columns = [
        index for index, name in enumerate(records.feature_names)
        if "_" not in name
    ]
    variants = {
        "values+std+rate (30 features)": records.features,
        "values only (10 features)": records.features[:, value_columns],
    }
    rows = []
    purities = {}
    for name, features in variants.items():
        labels = KMeans(3, seed=seed).fit(features).labels_
        assert labels is not None
        purity = cluster_purity(labels, truth)
        purities[name] = purity
        rows.append((name, features.shape[1], f"{purity:.1%}"))

    rendered = "\n".join([
        ascii_table(
            ("feature set", "n features", "purity vs ground truth"), rows,
            title="Ablation: clustering feature sets",
        ),
        "",
        "taxonomy check on the full feature set:",
        _taxonomy_note(records, seed),
    ])
    return ExperimentResult(
        experiment_id="ablation_features",
        title="Clustering feature-set ablation",
        paper_reference="the paper clusters on 30 features (values + std + "
                        "change rate per R/W attribute)",
        data={"purity": purities},
        rendered=rendered,
    )


def _taxonomy_note(records, seed: int) -> str:
    labels = KMeans(3, seed=seed).fit(records.features).labels_
    assert labels is not None
    groups = classify_groups(records, labels)
    return "; ".join(
        f"cluster {cid}: {group.failure_type.value} "
        f"({group.population_fraction:.1%})"
        for cid, group in sorted(groups.items())
    )
