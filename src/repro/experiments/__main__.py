"""``python -m repro.experiments`` — alias for the registry CLI."""

from repro.experiments.registry import main

if __name__ == "__main__":
    raise SystemExit(main())
