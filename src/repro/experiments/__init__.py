"""Experiment harness: one module per paper table/figure.

Every experiment regenerates one artifact of the paper's evaluation on
the default simulated fleet (or any fleet/report passed in), returning an
:class:`repro.experiments.common.ExperimentResult` with both structured
data and an ASCII rendering.  The registry maps experiment ids (``fig1``,
``table3``, ...) to runners; ``repro-experiments`` is the CLI entry
point.
"""

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    default_config,
    default_fleet,
    default_report,
)
from repro.experiments.registry import EXPERIMENTS, main, run_experiment

__all__ = [
    "DEFAULT_SEED",
    "ExperimentResult",
    "default_config",
    "default_fleet",
    "default_report",
    "EXPERIMENTS",
    "main",
    "run_experiment",
]
