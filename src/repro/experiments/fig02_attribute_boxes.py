"""Figure 2: distributions of the 12 attributes over failure records.

The paper: CPSC, R-CPSC, RUE, SER, HFW and HER show small variation among
90% of their values; RRER, TC, SUT, POH, RSC and R-RSC display medium to
large variations — the first hint that multiple failure categories exist.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import CharacterizationReport
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.figures import render_box_rows
from repro.stats.summary import box_summary

#: Attributes the paper lists as showing small variation among most
#: failure records.
SMALL_VARIATION = ("CPSC", "R-CPSC", "RUE", "SER", "HFW", "HER")
LARGE_VARIATION = ("RRER", "TC", "SUT", "POH", "RSC", "R-RSC")


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 2: distributions of the 12 attributes over failure records."""
    report = report if report is not None else default_report()
    records = report.records
    summaries = {}
    central_spread = {}
    for symbol in records.attribute_names:
        values = records.attribute_column(symbol)
        summaries[symbol] = box_summary(values)
        # "Small variation among 90% of the values": spread of the central
        # 90% of the distribution.
        p5, p95 = np.percentile(values, [5.0, 95.0])
        central_spread[symbol] = float(p95 - p5)

    rendered = render_box_rows(
        summaries, width=56,
        title="Figure 2: attribute distributions over failure records "
              "(normalized to [-1, 1])",
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Failure-record attribute distributions",
        paper_reference="CPSC/R-CPSC/RUE/SER/HFW/HER: small variation among "
                        "90% of values; RRER/TC/SUT/POH/RSC/R-RSC: medium to "
                        "large variation",
        data={
            "box_summaries": summaries,
            "central_90_spread": central_spread,
        },
        rendered=rendered,
    )
