"""Figure 10: correlation of environmental attributes with R/W attributes.

The paper correlates POH and TC with the degradation-dominant R/W
attributes over three horizons (degradation window, 24 hours, full
profile) and concludes: POH correlates strongly with the dominant
attributes *inside* degradation windows (it is monotone in time, as the
degradation is) but the influence "diminishes" at longer horizons, and
"in all cases, TC has little correlation with the read/write attributes"
— so neither environmental factor intensifies degradation.
"""

from __future__ import annotations

import numpy as np

from repro.core.influence import (
    environmental_correlations,
    rw_attribute_correlations,
    top_correlated_attributes,
)
from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.tables import ascii_table


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 10: correlation of environmental attributes with R/W attributes."""
    report = report if report is not None else default_report()
    rows = []
    data = {}
    for failure_type in FailureType:
        serial = report.categorization.centroid_of_type(failure_type)
        profile = report.dataset.get(serial)
        signature = report.signature_of(serial)
        correlations = rw_attribute_correlations(profile, signature.window)
        targets = tuple(top_correlated_attributes(correlations, count=2))
        cells = environmental_correlations(profile, signature.window, targets)
        name = f"group{failure_type.paper_group_number}"
        data[name] = {"targets": targets, "cells": cells}
        for cell in cells:
            rows.append((name, cell.environmental, cell.target,
                         cell.horizon, cell.correlation))

    # Headline checks: max |corr| of TC anywhere; POH in-window vs full.
    tc_values = [abs(r[4]) for r in rows if r[1] == "TC"]
    poh_window = [abs(r[4]) for r in rows
                  if r[1] == "POH" and r[3] == "degradation_window"]
    poh_full = [abs(r[4]) for r in rows
                if r[1] == "POH" and r[3] == "full_profile"]
    summary = (
        f"max |corr(TC, .)| anywhere: {max(tc_values):.2f} (paper: small); "
        f"mean |corr(POH, .)| in-window: {np.mean(poh_window):.2f} vs "
        f"full-profile: {np.mean(poh_full):.2f} (paper: strong in window, "
        f"diminishes at longer horizons)"
    )
    rendered = ascii_table(
        ("group", "env", "target", "horizon", "corr"), rows,
        title="Figure 10: environmental-attribute correlations",
    ) + "\n\n" + summary
    return ExperimentResult(
        experiment_id="fig10",
        title="Environmental attribute correlations",
        paper_reference="POH strong inside degradation windows, diminishing "
                        "over 24h/20d; TC uncorrelated everywhere",
        data=data,
        rendered=rendered,
    )
