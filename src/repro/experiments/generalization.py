"""Extension: the approach transfers to other storage systems.

The paper claims "our proposed approach is generic and applicable to
other storage systems" and contrasts its mixed-workload data center with
"dedicated backup storage systems where bad sector failures dominate"
(Ma et al., FAST'15).  This experiment simulates such a backup fleet —
write-heavy, wear-out dominated, a very different failure mixture — and
runs the unchanged categorization pipeline on it, verifying that:

* three groups still emerge and map onto the same taxonomy;
* bad-sector failures dominate, flipping the data-center mix exactly as
  the Ma et al. comparison predicts;
* categorization still matches the simulator's ground truth.
"""

from __future__ import annotations

from repro.core.pipeline import CharacterizationPipeline
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult
from repro.reporting.tables import ascii_table
from repro.sim.config import FleetConfig
from repro.sim.failure_modes import FailureMode
from repro.sim.fleet import simulate_fleet

MODE_BY_TYPE = {
    FailureType.LOGICAL: FailureMode.LOGICAL,
    FailureType.BAD_SECTOR: FailureMode.BAD_SECTOR,
    FailureType.HEAD: FailureMode.HEAD,
}


def run(*, n_drives: int = 3000, seed: int = 404) -> ExperimentResult:
    """Show the approach transferring to other storage systems."""
    fleet = simulate_fleet(FleetConfig.backup_system(n_drives=n_drives,
                                                     seed=seed))
    report = CharacterizationPipeline(run_prediction=False, seed=seed).run(
        fleet.dataset
    )

    rows = []
    fractions = {}
    correct = total = 0
    for failure_type in FailureType:
        serials = report.categorization.serials_of_type(failure_type)
        fractions[failure_type.name] = (
            len(serials) / report.records.n_records
        )
        for serial in serials:
            total += 1
            correct += fleet.true_modes[serial] is MODE_BY_TYPE[failure_type]
        summary = report.group_summaries.get(failure_type)
        rows.append((
            f"Group {failure_type.paper_group_number}",
            failure_type.value,
            f"{fractions[failure_type.name]:.1%}",
            f"{summary.median_window:.0f} h" if summary else "-",
            summary.consensus_order if summary else "-",
        ))
    accuracy = correct / total if total else 0.0

    rendered = "\n".join([
        ascii_table(
            ("group", "type", "population", "median window",
             "signature order"), rows,
            title="Generalization: unchanged pipeline on a backup-storage "
                  "fleet (write-heavy, wear-out dominated)",
        ),
        "",
        f"bad-sector failures dominate: "
        f"{fractions['BAD_SECTOR'] > 0.5} "
        f"(Ma et al. observe the same in EMC backup systems)",
        f"categorization accuracy vs ground truth: {accuracy:.1%}",
    ])
    return ExperimentResult(
        experiment_id="generalization",
        title="Transfer to a backup-storage system",
        paper_reference="the approach is generic; in backup systems "
                        "bad-sector failures dominate",
        data={"fractions": fractions, "accuracy": accuracy},
        rendered=rendered,
    )
