"""Figure 6: decile comparison of the most distinctive R/W attributes.

The paper compares the first nine deciles of RUE, R-RSC and RRER between
good records and each failure group: Group 2 has the lowest RUE, Group 3
the highest R-RSC ("all above 0.94") with close-to-good RUE/RRER, and
Group 1 sits near good states.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.tables import ascii_table
from repro.stats.summary import deciles

FIG6_ATTRIBUTES = ("RUE", "R-RSC", "RRER")


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 6: decile comparison of the most distinctive R/W attributes."""
    report = report if report is not None else default_report()
    dataset = report.dataset
    categorization = report.categorization

    good_values = {
        symbol: np.concatenate(
            [profile.column(symbol) for profile in dataset.good_profiles]
        )
        for symbol in FIG6_ATTRIBUTES
    }

    panels = []
    decile_data: dict[str, dict[str, np.ndarray]] = {}
    for symbol in FIG6_ATTRIBUTES:
        rows = [("good", *(float(v) for v in deciles(good_values[symbol])))]
        decile_data[symbol] = {"good": deciles(good_values[symbol])}
        for failure_type in FailureType:
            serials = categorization.serials_of_type(failure_type)
            values = np.array([
                dataset.get(serial).failure_record()[
                    dataset.column_index(symbol)
                ]
                for serial in serials
            ])
            group_deciles = deciles(values)
            name = f"group{failure_type.paper_group_number}"
            decile_data[symbol][name] = group_deciles
            rows.append((name, *(float(v) for v in group_deciles)))
        panels.append(ascii_table(
            ("series", *(f"d{i}" for i in range(1, 10))), rows,
            title=f"Figure 6 ({symbol}): deciles, good records vs failure groups",
        ))

    return ExperimentResult(
        experiment_id="fig6",
        title="Decile comparison of RUE / R-RSC / RRER",
        paper_reference="G2: lowest RUE, 70% of RRER below 0, diverse R-RSC; "
                        "G3: R-RSC all above 0.94, close-to-good RRER/RUE; "
                        "G1: close to good states",
        data={"deciles": decile_data},
        rendered="\n\n".join(panels),
    )
