"""Classical failure-prediction baselines (Section II-C context).

The paper motivates its work against the classical drive-level detectors:
vendor thresholds (FDR 3-10% at ~0.1% FAR), the rank-sum test (60% FDR at
0.5% FAR) and Bayesian methods (35-55% at ~1% FAR).  This experiment runs
the three baselines on the simulated fleet under a prediction protocol
with lead time — each detector sees a 48-hour observation window ending
24 hours *before* the failure event, so detectors cannot peek at the
failure record — and reproduces the who-wins ordering: statistical
detectors beat conservative vendor thresholds on detection rate at a
false-alarm cost.

The statistical detectors test only the failure-indicative error
attributes; identity-like attributes (temperature, spin-up time, power-on
hours) differ across healthy drives for benign reasons (rack position,
age) and would turn a distribution test into a drive-identity test.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, default_fleet
from repro.ml.hmm import HMMDetector
from repro.ml.metrics import detection_rates
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.ranksum import RankSumDetector
from repro.ml.threshold import ThresholdDetector
from repro.reporting.tables import ascii_table
from repro.sim.fleet import FleetResult

#: Observation window: 48 hours ending 24 hours before the profile end.
DETECTION_SPAN_HOURS = 48
DETECTION_LEAD_HOURS = 24

#: Attributes whose distributions indicate failure (error counters and
#: rates), excluding identity-like environmental/mechanical attributes.
FAILURE_INDICATIVE = ("RRER", "RSC", "RUE", "HFW", "HER", "CPSC",
                      "R-RSC", "R-CPSC")

#: Subset usable by lower-bound vendor thresholds: health values, where
#: lower means worse.  Raw counters grow with degradation, so a deep
#: lower cut would flag every *healthy* drive instead.
HEALTH_INDICATIVE = ("RRER", "RSC", "RUE", "HFW", "HER", "CPSC")


def run(fleet: FleetResult | None = None, *, seed: int = 23) -> ExperimentResult:
    """Run the classical failure-prediction baselines (Section II-C)."""
    fleet = fleet if fleet is not None else default_fleet()
    dataset = fleet.dataset.normalize()
    rng = np.random.default_rng(seed)
    indicative_columns = [
        dataset.column_index(symbol) for symbol in FAILURE_INDICATIVE
    ]

    good = dataset.good_profiles
    failed = dataset.failed_profiles
    order = rng.permutation(len(good))
    half = len(good) // 2
    train_good = [good[i] for i in order[:half]]
    eval_good = [good[i] for i in order[half:]]

    def observation(profile) -> np.ndarray:
        stop = len(profile) - DETECTION_LEAD_HOURS
        start = max(0, stop - DETECTION_SPAN_HOURS)
        if stop <= start:  # very short profile: use what exists
            return profile.matrix[: max(1, len(profile) // 2)]
        return profile.matrix[start:stop]

    train_matrix = np.vstack([observation(p) for p in train_good])
    eval_profiles = eval_good + failed
    labels = np.array([p.failed for p in eval_profiles])
    windows = [observation(p) for p in eval_profiles]

    # Vendor thresholds: fixed deep cuts on the health-value attributes,
    # the conservative design-time policy the paper cites.
    health_columns = [dataset.column_index(s) for s in HEALTH_INDICATIVE]
    threshold = ThresholdDetector.conservative(len(health_columns))
    threshold_flags = np.array([
        threshold.flag_drive(w[:, health_columns]) for w in windows
    ])

    # Rank-sum on the failure-indicative attributes only.
    ranksum = RankSumDetector(significance=1.0e-6, seed=seed)
    ranksum.fit(train_matrix[:, indicative_columns])
    ranksum_flags = np.array([
        ranksum.flag(w[:, indicative_columns]) for w in windows
    ])

    # Gaussian naive Bayes: needs failed training examples — use half of
    # the failed drives for training, the remainder for evaluation.
    failed_order = rng.permutation(len(failed))
    failed_half = max(1, len(failed) // 2)
    bayes_train = [failed[i] for i in failed_order[:failed_half]]
    bayes_eval = eval_good + [failed[i] for i in failed_order[failed_half:]]
    features = [train_matrix[:, indicative_columns]]
    bayes_labels_train = [np.zeros(train_matrix.shape[0], dtype=bool)]
    for profile in bayes_train:
        window = observation(profile)[:, indicative_columns]
        features.append(window)
        bayes_labels_train.append(np.ones(window.shape[0], dtype=bool))
    bayes = GaussianNaiveBayes().fit(
        np.vstack(features), np.concatenate(bayes_labels_train)
    )
    bayes_eval_labels = np.array([p.failed for p in bayes_eval])
    bayes_flags = np.array([
        bool(np.mean(bayes.predict(
            observation(p)[:, indicative_columns], threshold=2.0
        )) > 0.5)
        for p in bayes_eval
    ])

    # Gaussian HMM likelihood-ratio detector (Zhao et al. framing):
    # healthy-model vs pre-failure-model per-observation log-likelihoods.
    hmm_good_windows = [
        observation(p)[:, indicative_columns] for p in train_good[:200]
    ]
    hmm_failed_windows = [
        observation(p)[:, indicative_columns] for p in bayes_train
    ]
    hmm = HMMDetector(n_states=3, margin=0.5, seed=seed).fit(
        hmm_good_windows, hmm_failed_windows
    )
    hmm_flags = np.array([
        hmm.flag(observation(p)[:, indicative_columns]) for p in bayes_eval
    ])

    rates = {
        "vendor_threshold": detection_rates(labels, threshold_flags),
        "rank_sum": detection_rates(labels, ranksum_flags),
        "naive_bayes": detection_rates(bayes_eval_labels, bayes_flags),
        "gaussian_hmm": detection_rates(bayes_eval_labels, hmm_flags),
    }
    statistical_fdr = max(rates["rank_sum"].fdr, rates["naive_bayes"].fdr)
    ordering_holds = statistical_fdr > rates["vendor_threshold"].fdr
    rows = [
        (name, f"{r.fdr:.1%}", f"{r.far:.2%}", r.n_failed, r.n_good)
        for name, r in rates.items()
    ]
    rendered = "\n".join([
        ascii_table(
            ("detector", "FDR", "FAR", "n failed", "n good"), rows,
            title=(f"Classical baselines, {DETECTION_LEAD_HOURS}h lead time, "
                   f"{DETECTION_SPAN_HOURS}h observation window"),
        ),
        "",
        f"statistical detectors beat vendor thresholds on FDR: {ordering_holds}",
        "paper context: vendor thresholds 3-10% FDR @ ~0.1% FAR; rank-sum "
        "60% @ 0.5%; Bayesian 35-55% @ ~1%",
    ])
    return ExperimentResult(
        experiment_id="baselines",
        title="Classical detector FDR/FAR comparison",
        paper_reference="statistical detectors beat vendor thresholds on FDR "
                        "at a FAR cost",
        data={
            **{name: {"fdr": r.fdr, "far": r.far} for name, r in rates.items()},
            "ordering_holds": ordering_holds,
        },
        rendered=rendered,
    )
