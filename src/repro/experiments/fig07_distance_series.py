"""Figure 7: dissimilarity of health records to the failure record.

For the centroid drives of the three groups: Groups 1 and 3 fluctuate
("repeated increase followed by decrease") until the final monotone
descent; Group 2 "keeps decreasing to zero" over the whole profile.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import CharacterizationReport
from repro.core.signatures import distance_to_failure
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.figures import ascii_series
from repro.stats.correlation import spearman


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 7: dissimilarity of health records to the failure record."""
    report = report if report is not None else default_report()
    panels = []
    series_data = {}
    descent_trend = {}
    for failure_type in FailureType:
        serial = report.categorization.centroid_of_type(failure_type)
        profile = report.dataset.get(serial)
        distances = distance_to_failure(profile)
        index = np.arange(distances.shape[0], dtype=np.float64)
        name = f"group{failure_type.paper_group_number}"
        series_data[name] = distances
        # Rank trend of the whole series: -1 = a clean monotone descent
        # over the entire profile (the paper's Group 2 shape); a flat
        # fluctuating plateau followed by a short final drop scores much
        # weaker (Groups 1 and 3).
        descent_trend[name] = spearman(index, distances)
        panels.append(ascii_series(
            index, {"distance": distances}, height=10, width=70,
            title=f"Figure 7 ({name}, centroid {serial}): distance to failure",
        ))
    rendered = "\n\n".join(panels) + "\n\n" + "whole-series descent trend (-1 = monotone): " + ", ".join(
        f"{k}={v:.2f}" for k, v in descent_trend.items()
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="Distance (dissimilarity) to failure for the centroid drives",
        paper_reference="G1/G3 fluctuate before the final descent; G2 "
                        "decreases monotonically to zero",
        data={
            "series": series_data,
            "descent_trend": descent_trend,
        },
        rendered=rendered,
    )
