"""Figure 5: failure records of the three group centroids.

The paper compares the centroid drives (57, 369, 136): the Group 2
centroid "detects a large number of uncorrectable errors", the Group 3
centroid "has the largest number of reallocated sectors", and the Group 1
centroid "looks normal without obvious problems".
"""

from __future__ import annotations

from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.tables import ascii_table

#: Attributes plotted in the paper's Figure 5 (RSC omitted as a linear
#: transformation of R-RSC; R-CPSC and the near-constant attributes are
#: also compressed out of the paper's chart).
FIG5_ATTRIBUTES = ("R-RSC", "RUE", "RRER", "HER", "SUT", "SER", "POH", "TC")


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 5: failure records of the three group centroids."""
    report = report if report is not None else default_report()
    rows = []
    centroid_values = {}
    for failure_type in FailureType:
        serial = report.categorization.centroid_of_type(failure_type)
        profile = report.dataset.get(serial)
        record = profile.failure_record()
        values = {
            symbol: float(record[report.dataset.column_index(symbol)])
            for symbol in FIG5_ATTRIBUTES
        }
        centroid_values[failure_type] = values
        rows.append(
            (f"group{failure_type.paper_group_number} ({serial})",
             *(values[symbol] for symbol in FIG5_ATTRIBUTES))
        )
    rendered = ascii_table(
        ("Centroid", *FIG5_ATTRIBUTES), rows,
        title="Figure 5: failure records of the group centroid drives "
              "(normalized)",
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Centroid failure records",
        paper_reference="G2 centroid: many uncorrectable errors; G3: most "
                        "reallocated sectors; G1: looks normal",
        data={"centroid_values": centroid_values},
        rendered=rendered,
    )
