"""Figure 9: correlation of R/W attributes with failure degradation.

The paper: "RRER strongly correlates with the failure degradation in both
Groups 1 and 3, while R-RSC and RUE are the top two attributes for
Group 2."
"""

from __future__ import annotations

from repro.core.influence import (
    rw_attribute_correlations,
    top_correlated_attributes,
)
from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.tables import ascii_table
from repro.smart.attributes import READ_WRITE_ATTRIBUTES


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 9: correlation of R/W attributes with failure degradation."""
    report = report if report is not None else default_report()
    rows = []
    data = {}
    for failure_type in FailureType:
        serial = report.categorization.centroid_of_type(failure_type)
        signature = report.signature_of(serial)
        correlations = rw_attribute_correlations(
            report.dataset.get(serial), signature.window
        )
        top = top_correlated_attributes(correlations, count=2)
        name = f"group{failure_type.paper_group_number}"
        data[name] = {"correlations": correlations, "top": top}
        rows.append((
            name,
            *(correlations[symbol] for symbol in READ_WRITE_ATTRIBUTES),
            "/".join(top),
        ))
    rendered = ascii_table(
        ("group", *READ_WRITE_ATTRIBUTES, "top-2 |corr|"), rows,
        title="Figure 9: correlation of R/W attributes with degradation "
              "(centroid drives)",
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="R/W attribute correlation with degradation",
        paper_reference="RRER dominant for G1 and G3; RUE and R-RSC top two "
                        "for G2",
        data=data,
        rendered=rendered,
    )
