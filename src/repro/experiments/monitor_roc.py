"""Extension: operating curve of the degradation-monitor middleware.

The Section VI middleware is only useful if its alert threshold admits a
good detection/false-alarm trade-off on drives it never trained on.
This experiment trains the per-group predictors on one fleet, streams a
*fresh* fleet (different seed) through the stage scorer, and sweeps the
WATCH threshold: for each setting it reports the failed-drive detection
rate with at least 24 hours of lead time and the good-drive false-alarm
rate — the FDR/FAR axes every disk-failure-prediction study uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.prediction import DegradationPredictor
from repro.core.pipeline import CharacterizationPipeline
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult
from repro.reporting.tables import ascii_table
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet

THRESHOLDS = (-0.02, -0.05, -0.10, -0.20, -0.40)
LEAD_HOURS = 24


def run(*, train_drives: int = 2000, eval_drives: int = 1500,
        seed: int = 71) -> ExperimentResult:
    """Sweep the monitor thresholds into an operating curve."""
    train_fleet = simulate_fleet(FleetConfig(n_drives=train_drives,
                                             seed=seed))
    report = CharacterizationPipeline(run_prediction=False, seed=seed).run(
        train_fleet.dataset
    )
    predictor = DegradationPredictor(seed=seed)
    predictor.evaluate_all(report.dataset, report.categorization)
    trees = [predictor.tree_for(t) for t in FailureType]
    normalizer = train_fleet.dataset.fit_normalizer()

    eval_fleet = simulate_fleet(FleetConfig(n_drives=eval_drives,
                                            seed=seed + 1))

    # Most pessimistic stage over time per drive; failed drives are
    # scored only up to LEAD_HOURS before the failure (an alert with no
    # lead time rescues nothing).
    min_stage_failed = []
    for profile in eval_fleet.dataset.failed_profiles:
        if len(profile) <= LEAD_HOURS + 1:
            continue
        matrix = normalizer.transform(profile.matrix[:-LEAD_HOURS])
        stages = np.min(
            np.vstack([tree.predict(matrix) for tree in trees]), axis=0
        )
        min_stage_failed.append(float(stages.min()))
    min_stage_good = []
    for profile in eval_fleet.dataset.good_profiles:
        matrix = normalizer.transform(profile.matrix)
        stages = np.min(
            np.vstack([tree.predict(matrix) for tree in trees]), axis=0
        )
        min_stage_good.append(float(stages.min()))
    failed_stages = np.array(min_stage_failed)
    good_stages = np.array(min_stage_good)

    rows = []
    curve = {}
    for threshold in THRESHOLDS:
        fdr = float(np.mean(failed_stages <= threshold))
        far = float(np.mean(good_stages <= threshold))
        curve[threshold] = {"fdr": fdr, "far": far}
        rows.append((threshold, f"{fdr:.1%}", f"{far:.2%}"))

    rendered = "\n".join([
        ascii_table(
            ("watch threshold", f"FDR (>= {LEAD_HOURS}h lead)", "FAR"),
            rows,
            title="Degradation-monitor operating curve on an unseen fleet",
        ),
        "",
        f"{failed_stages.shape[0]} failed and {good_stages.shape[0]} good "
        "drives scored; tightening the threshold trades detection for "
        "false alarms, exactly as with the classical detectors.",
    ])
    return ExperimentResult(
        experiment_id="monitor_roc",
        title="Monitor middleware operating curve",
        paper_reference="Section VI middleware; FDR/FAR axes of the "
                        "Section II-C literature",
        data={"curve": curve,
              "n_failed": int(failed_stages.shape[0]),
              "n_good": int(good_stages.shape[0])},
        rendered=rendered,
    )
