"""Ablation: Euclidean vs Mahalanobis distance for degradation analysis.

The paper tested both and chose Euclidean: "Euclidean distance provides
us a better characterization of the changes of lower distances, while the
lower Mahalanobis distances are all the same."  This ablation quantifies
that: near the failure event, the Euclidean series keeps resolving
distinct degradation levels while the Mahalanobis series collapses.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import CharacterizationReport
from repro.core.signatures import distance_to_failure
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.ml.distance import MahalanobisDistance
from repro.reporting.tables import ascii_table
from repro.stats.correlation import spearman

#: Bounds of the tail over which the decline is scored; the tail scales
#: with the group's own degradation window so slow (Group 2) and fast
#: (Group 1) degradations are judged over a comparable share of their
#: descent.
MIN_TAIL_RECORDS = 8
MAX_TAIL_RECORDS = 60


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Run the distance ablation (Euclidean vs Mahalanobis)."""
    report = report if report is not None else default_report()
    dataset = report.dataset
    stacked, _ = dataset.stacked_records()
    mahalanobis = MahalanobisDistance().fit(stacked)

    rows = []
    data = {}
    for failure_type in FailureType:
        serial = report.categorization.centroid_of_type(failure_type)
        profile = dataset.get(serial)
        window = report.signature_of(serial).window_size
        tail = int(np.clip(window // 4, MIN_TAIL_RECORDS, MAX_TAIL_RECORDS))
        euclid = distance_to_failure(profile)
        maha = distance_to_failure(profile, metric="mahalanobis",
                                   mahalanobis=mahalanobis)
        name = f"group{failure_type.paper_group_number}"
        decline = {
            "euclidean": _tail_decline(euclid, tail),
            "mahalanobis": _tail_decline(maha, tail),
        }
        data[name] = decline
        rows.append((name, decline["euclidean"], decline["mahalanobis"]))

    euclid_wins = all(
        values["euclidean"] <= values["mahalanobis"] for values in data.values()
    )
    rendered = "\n".join([
        ascii_table(
            ("group", "euclidean tail decline",
             "mahalanobis tail decline"), rows,
            title="Ablation: tail rank-correlation with time (-1 = clean "
                  "monotone decline) over the final quarter of each window",
        ),
        "",
        f"euclidean declines at least as cleanly in every group: "
        f"{euclid_wins} (paper: chose Euclidean for exactly this reason)",
    ])
    return ExperimentResult(
        experiment_id="ablation_distance",
        title="Distance metric ablation",
        paper_reference="Euclidean characterizes low distances better; low "
                        "Mahalanobis distances collapse together",
        data={**data, "euclidean_wins": euclid_wins},
        rendered=rendered,
    )


def _tail_decline(distances: np.ndarray, tail_records: int) -> float:
    """Rank correlation of the final pre-failure records with time.

    A metric that keeps resolving the approach to failure declines
    monotonically (correlation near -1); one whose low distances are
    "all the same" shows no ordering (correlation near 0).  The failure
    record itself (distance identically zero) is excluded.
    """
    tail = distances[-(tail_records + 1):-1]
    index = np.arange(tail.shape[0], dtype=np.float64)
    return spearman(index, tail)
