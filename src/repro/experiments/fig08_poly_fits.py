"""Figure 8: failure degradation of the centroid drives with fits.

Per group: the degradation window size, the normalized degradation curve
and the R-squared of polynomial fits of order 1..3.  The paper's windows
are d = 3 / 377 / 12 for the centroids, with the best-fitting canonical
orders 2 / 1 / 3.
"""

from __future__ import annotations

from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.figures import ascii_series
from repro.reporting.tables import ascii_table

PAPER_WINDOWS = {
    FailureType.LOGICAL: 3,
    FailureType.BAD_SECTOR: 377,
    FailureType.HEAD: 12,
}


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 8: failure degradation of the centroid drives with fits."""
    report = report if report is not None else default_report()
    panels = []
    fit_rows = []
    data: dict[str, dict] = {}
    for failure_type in FailureType:
        serial = report.categorization.centroid_of_type(failure_type)
        signature = report.signature_of(serial)
        t, s = signature.window.degradation_values()
        name = f"group{failure_type.paper_group_number}"
        panels.append(ascii_series(
            t, {"degradation": s}, height=10, width=64,
            title=(f"Figure 8 ({name}, centroid {serial}): degradation, "
                   f"window d={signature.window_size} "
                   f"(paper d={PAPER_WINDOWS[failure_type]})"),
        ))
        r2_by_order = {
            fit.order: fit.r_squared for fit in signature.polynomial_fits
        }
        fit_rows.append((
            name, signature.window_size,
            *(r2_by_order.get(order, float("nan")) for order in (1, 2, 3)),
            signature.best_canonical_order,
        ))
        data[name] = {
            "window": signature.window_size,
            "r_squared": r2_by_order,
            "canonical_rmse": signature.canonical_rmse,
            "best_canonical_order": signature.best_canonical_order,
        }
    rendered = "\n\n".join(panels) + "\n\n" + ascii_table(
        ("group", "d", "R2 order1", "R2 order2", "R2 order3",
         "best canonical"),
        fit_rows,
        title="Polynomial fit quality per centroid",
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Degradation curves and polynomial fits",
        paper_reference="centroid windows 3 / 377 / 12; signature orders "
                        "2 / 1 / 3",
        data=data,
        rendered=rendered,
    )
