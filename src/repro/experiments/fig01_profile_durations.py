"""Figure 1: histogram of the health-profile durations of failed drives.

The paper: "78.5% of the failed drives have their health profiles longer
than 10 days and the percent of failed drives having a 20-day health
profile reaches 51.3%."
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, default_fleet
from repro.reporting.figures import ascii_histogram
from repro.sim.fleet import FleetResult


def run(fleet: FleetResult | None = None) -> ExperimentResult:
    """Render Figure 1: histogram of the health-profile durations of failed drives."""
    fleet = fleet if fleet is not None else default_fleet()
    durations = np.array(
        [len(profile) for profile in fleet.dataset.failed_profiles],
        dtype=np.float64,
    )
    fraction_over_10_days = float(np.mean(durations > 240))
    fraction_full_20_days = float(np.mean(durations >= 480))
    rendered = "\n".join([
        ascii_histogram(
            durations, n_bins=10, width=50,
            title="Figure 1: duration of failed-drive health profiles (hours)",
        ),
        "",
        f"profiles > 10 days: {fraction_over_10_days:.1%} (paper: 78.5%)",
        f"full 20-day profiles: {fraction_full_20_days:.1%} (paper: 51.3%)",
    ])
    return ExperimentResult(
        experiment_id="fig1",
        title="Failed-drive profile durations",
        paper_reference="78.5% of profiles > 10 days; 51.3% with the full "
                        "20-day profile",
        data={
            "durations": durations,
            "fraction_over_10_days": fraction_over_10_days,
            "fraction_full_20_days": fraction_full_20_days,
        },
        rendered=rendered,
    )
