"""Shared infrastructure of the experiment harness.

All experiments run against one seed-pinned default fleet so their
outputs are mutually consistent (the same failure groups appear in every
figure).  The fleet, its normalized dataset and the full pipeline report
are memoized per (n_drives, seed).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any

from repro.core.pipeline import CharacterizationPipeline, CharacterizationReport
from repro.obs.observer import NULL_OBSERVER, PipelineObserver
from repro.sim.config import FleetConfig
from repro.sim.fleet import FleetResult, simulate_fleet

#: Seed and scale of the default experiment fleet.  ~4,000 drives at the
#: paper's 1.85% failure rate yields ~74 failed drives — a scaled-down
#: version of the paper's 433 — while keeping every experiment
#: laptop-fast.  ``configure_default_fleet`` (or the CLI's --n-drives /
#: --seed options) overrides the scale process-wide, e.g. for a full
#: 23,395-drive paper-scale run.
DEFAULT_SEED = 42
DEFAULT_N_DRIVES = 4000

_active_scale: dict[str, int] = {
    "n_drives": DEFAULT_N_DRIVES,
    "seed": DEFAULT_SEED,
}

_pipeline_observer: PipelineObserver = NULL_OBSERVER


def configure_default_fleet(*, n_drives: int | None = None,
                            seed: int | None = None) -> None:
    """Override the scale/seed used by parameterless experiment runs."""
    if n_drives is not None:
        _active_scale["n_drives"] = n_drives
    if seed is not None:
        _active_scale["seed"] = seed


def get_pipeline_observer() -> PipelineObserver:
    """The observer future default fleet/report builds will emit to."""
    return _pipeline_observer


def active_scale() -> tuple[int, int]:
    """The (n_drives, seed) parameterless experiment runs resolve to."""
    return _active_scale["n_drives"], _active_scale["seed"]


def set_pipeline_observer(observer: PipelineObserver | None) -> None:
    """Route telemetry of future default fleet/report builds to ``observer``.

    Results are memoized per (n_drives, seed), so set the observer
    *before* the first :func:`default_fleet` / :func:`default_report`
    call of a process (the benchmark harness does this at session
    start); already-cached results are returned without re-running and
    emit nothing.  Pass ``None`` to restore the no-op observer.
    """
    global _pipeline_observer
    _pipeline_observer = observer if observer is not None else NULL_OBSERVER


@dataclass(frozen=True, slots=True)
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes
    ----------
    experiment_id:
        Registry id, e.g. ``"fig8"``.
    title:
        Human-readable title.
    paper_reference:
        What the paper reports for this artifact (the comparison target).
    data:
        Structured results for programmatic use and assertions.
    rendered:
        ASCII rendering of the regenerated table/figure.
    """

    experiment_id: str
    title: str
    paper_reference: str
    data: dict[str, Any] = field(default_factory=dict)
    rendered: str = ""

    def __str__(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        reference = f"paper: {self.paper_reference}"
        return "\n".join([header, reference, "", self.rendered])


def default_config(n_drives: int | None = None,
                   seed: int | None = None) -> FleetConfig:
    """Configuration of the default experiment fleet."""
    return FleetConfig(
        n_drives=n_drives if n_drives is not None else _active_scale["n_drives"],
        seed=seed if seed is not None else _active_scale["seed"],
    )


def default_fleet(n_drives: int | None = None,
                  seed: int | None = None) -> FleetResult:
    """Simulate (and memoize) the default fleet."""
    config = default_config(n_drives, seed)
    return _cached_fleet(config.n_drives, config.seed)


def default_report(n_drives: int | None = None,
                   seed: int | None = None) -> CharacterizationReport:
    """Run (and memoize) the full pipeline on the default fleet."""
    config = default_config(n_drives, seed)
    return _cached_report(config.n_drives, config.seed)


@functools.lru_cache(maxsize=4)
def _cached_fleet(n_drives: int, seed: int) -> FleetResult:
    return simulate_fleet(FleetConfig(n_drives=n_drives, seed=seed),
                          observer=_pipeline_observer)


@functools.lru_cache(maxsize=4)
def _cached_report(n_drives: int, seed: int) -> CharacterizationReport:
    fleet = _cached_fleet(n_drives, seed)
    pipeline = CharacterizationPipeline(seed=seed,
                                        observer=_pipeline_observer)
    return pipeline.run(fleet.dataset)
