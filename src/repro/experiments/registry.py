"""Experiment registry and CLI entry point.

``repro-experiments`` (or ``python -m repro.experiments.registry``) runs
any subset of the paper's experiments and prints their renderings:

.. code-block:: console

   $ repro-experiments --list
   $ repro-experiments fig8 table3
   $ repro-experiments --all --jobs 4

``--jobs N`` fans the selected experiments out across N worker
processes through :func:`repro.parallel.map_drives`.  The parent
pre-warms the memoized default fleet and pipeline report before the
pool starts, so (on fork-based platforms) every worker inherits the
shared dataset instead of rebuilding it; results are merged back in
registry order, so the printed stream and any ``--output`` file are
identical to a serial run.  Empty and single-experiment selections
never spin up a pool at all.

Long sweeps are crash-safe: ``--checkpoint-dir DIR`` persists each
finished experiment atomically (see
:mod:`repro.experiments.checkpoint`), ``--resume`` restores valid
checkpoints and re-executes only what is missing, and ``--keep-going``
records a failed experiment and carries on instead of aborting the
sweep (failures are never checkpointed, so a later ``--resume`` retries
them).
"""

from __future__ import annotations

import argparse
import functools
import sys
from pathlib import Path
from typing import Callable

from repro.errors import CheckpointError, ExperimentError, ReproError
from repro.experiments.checkpoint import CheckpointStore, ExperimentFailure
from repro.experiments import (
    ablation_distance,
    ablation_features,
    baselines_prediction,
    fig01_profile_durations,
    fig02_attribute_boxes,
    fig03_elbow,
    fig04_pca_groups,
    fig05_centroids,
    fig06_deciles,
    fig07_distance_series,
    fig08_poly_fits,
    fig09_rw_correlation,
    fig10_env_correlation,
    fig11_tc_zscores,
    fig12_poh_zscores,
    failure_rates,
    fig13_regression_tree,
    generalization,
    monitor_roc,
    prediction_methods,
    raid_protection,
    robustness,
    sig_model_selection,
    thermal_mitigation,
    table1_attributes,
    table2_taxonomy,
    table3_prediction,
)
from repro.experiments.common import ExperimentResult
from repro.obs.timing import format_duration, timeit

#: Registry of experiment ids to (runner, description).
EXPERIMENTS: dict[str, tuple[Callable[[], ExperimentResult], str]] = {
    "table1": (table1_attributes.run, "Table I: selected SMART attributes"),
    "fig1": (fig01_profile_durations.run,
             "Figure 1: failed-drive profile durations"),
    "fig2": (fig02_attribute_boxes.run,
             "Figure 2: attribute distributions over failure records"),
    "fig3": (fig03_elbow.run, "Figure 3: cluster-count elbow analysis"),
    "fig4": (fig04_pca_groups.run, "Figure 4: PCA scatter of failure groups"),
    "fig5": (fig05_centroids.run, "Figure 5: centroid failure records"),
    "fig6": (fig06_deciles.run, "Figure 6: decile comparison of key attributes"),
    "table2": (table2_taxonomy.run, "Table II: failure taxonomy"),
    "fig7": (fig07_distance_series.run,
             "Figure 7: distance-to-failure series"),
    "fig8": (fig08_poly_fits.run, "Figure 8: degradation curves and fits"),
    "sig_models": (sig_model_selection.run,
                   "Section IV-C: signature model selection"),
    "fig9": (fig09_rw_correlation.run,
             "Figure 9: R/W attribute correlation with degradation"),
    "fig10": (fig10_env_correlation.run,
              "Figure 10: environmental correlations"),
    "fig11": (fig11_tc_zscores.run, "Figure 11: TC z-scores"),
    "fig12": (fig12_poh_zscores.run, "Figure 12: POH z-scores"),
    "fig13": (fig13_regression_tree.run, "Figure 13: Group 1 regression tree"),
    "table3": (table3_prediction.run, "Table III: prediction RMSE/error"),
    "baselines": (baselines_prediction.run,
                  "Extension: classical detector baselines"),
    "ablation_distance": (ablation_distance.run,
                          "Ablation: Euclidean vs Mahalanobis"),
    "ablation_features": (ablation_features.run,
                          "Ablation: clustering feature sets"),
    "prediction_methods": (prediction_methods.run,
                           "Extension: alternative degradation predictors"),
    "generalization": (generalization.run,
                       "Extension: transfer to a backup-storage fleet"),
    "raid_protection": (raid_protection.run,
                        "Extension: RAID data-loss risk and proactive "
                        "protection"),
    "thermal_mitigation": (thermal_mitigation.run,
                           "Extension: cooling vs logical failures"),
    "robustness": (robustness.run,
                   "Extension: categorization robustness across fleets"),
    "failure_rates": (failure_rates.run,
                      "Extension: AFR and failure-time distribution"),
    "monitor_roc": (monitor_roc.run,
                    "Extension: monitor middleware operating curve"),
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by registry id."""
    try:
        runner, _ = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(EXPERIMENTS)}"
        ) from None
    return runner()


def _worker_init(n_drives: int, seed: int) -> None:
    """Replicate the parent's fleet scale in a pool worker."""
    from repro.experiments.common import configure_default_fleet

    configure_default_fleet(n_drives=n_drives, seed=seed)


def _run_timed(experiment_id: str) -> tuple[ExperimentResult, float]:
    """Worker body: run one experiment, return (result, wall seconds)."""
    with timeit(experiment_id) as timer:
        result = run_experiment(experiment_id)
    return result, timer.wall_s


def _execute_one(experiment_id: str, *,
                 checkpoint_spec: tuple[str, int, int] | None = None,
                 keep_going: bool = False,
                 ) -> tuple[ExperimentResult | ExperimentFailure, float]:
    """Worker body with the resilience features bolted on.

    Runs one experiment; on success, optionally persists its checkpoint
    (``checkpoint_spec`` is ``(directory, n_drives, seed)`` — plain
    values, because this function must pickle into pool workers).  With
    ``keep_going``, a failure is captured as an
    :class:`ExperimentFailure` instead of propagating, so one broken
    experiment cannot abort a sweep.  Failures are never checkpointed.
    """
    failure: ExperimentFailure | None = None
    with timeit(experiment_id) as timer:
        try:
            result = run_experiment(experiment_id)
        except Exception as error:
            if not keep_going:
                raise
            failure = ExperimentFailure(
                experiment_id=experiment_id,
                error_type=type(error).__name__,
                message=str(error),
            )
    if failure is not None:
        return failure, timer.wall_s
    if checkpoint_spec is not None:
        directory, n_drives, seed = checkpoint_spec
        store = CheckpointStore(directory, n_drives=n_drives, seed=seed)
        store.store(result, timer.wall_s)
    return result, timer.wall_s


def run_many(ids: list[str], *, jobs: int = 1,
             checkpoint_dir: str | Path | None = None,
             resume: bool = False, keep_going: bool = False,
             ) -> list[tuple[ExperimentResult | ExperimentFailure, float]]:
    """Run experiments, fanning out across ``jobs`` worker processes.

    Results come back in the order of ``ids`` regardless of completion
    order, so any job count renders the same stream.  Unknown ids fail
    fast before any work is dispatched.  Every experiment's duration and
    the job count are emitted through the experiment harness's observer
    seam (``experiment_duration_s`` histogram, ``parallel_jobs`` gauge).

    With ``checkpoint_dir``, each finished experiment is persisted
    atomically as it completes (inside the worker, so a killed sweep
    keeps everything that finished).  With ``resume``, valid checkpoints
    at the active fleet scale are restored instead of re-executed —
    restored entries report their *original* wall time.  With
    ``keep_going``, a failing experiment yields an
    :class:`ExperimentFailure` in its slot instead of aborting the
    sweep.  Empty and fully-restored selections return without creating
    a worker pool.
    """
    from repro.experiments.common import (
        active_scale,
        default_report,
        get_pipeline_observer,
    )
    from repro.parallel import ParallelConfig, effective_jobs, map_drives

    unknown = [experiment_id for experiment_id in ids
               if experiment_id not in EXPERIMENTS]
    if unknown:
        raise ExperimentError(
            f"unknown experiment {unknown[0]!r}; known: "
            f"{', '.join(EXPERIMENTS)}"
        )
    if resume and checkpoint_dir is None:
        raise CheckpointError("resume requires a checkpoint directory")
    observer = get_pipeline_observer()
    n_drives, seed = active_scale()

    store: CheckpointStore | None = None
    restored: dict[str, tuple[ExperimentResult, float]] = {}
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir, n_drives=n_drives, seed=seed)
        if resume:
            for experiment_id in ids:
                loaded = store.load(experiment_id)
                if loaded is not None:
                    restored[experiment_id] = loaded
    if restored:
        observer.count("experiments_restored", len(restored))
        observer.event("experiments restored from checkpoints",
                       restored=len(restored), requested=len(ids))

    to_run = [experiment_id for experiment_id in ids
              if experiment_id not in restored]
    computed: dict[str, tuple[ExperimentResult | ExperimentFailure, float]] = {}
    if to_run:
        resolved_jobs = min(effective_jobs(jobs), len(to_run))
        if resolved_jobs > 1:
            # Build the memoized fleet + report once in the parent so
            # fork-started workers inherit the shared dataset cache
            # instead of simulating their own copy per process.
            with observer.span("experiments-prewarm"):
                default_report()
        worker = functools.partial(
            _execute_one,
            checkpoint_spec=(str(store.directory), n_drives, seed)
            if store is not None else None,
            keep_going=keep_going,
        )
        pairs = map_drives(
            worker, to_run,
            ParallelConfig(n_jobs=resolved_jobs, backend="process",
                           chunk_size=1),
            observer=observer, label="experiments-fanout",
            initializer=_worker_init, initargs=(n_drives, seed),
        )
        observer.gauge("parallel_jobs", resolved_jobs)
        computed = dict(zip(to_run, pairs))

    merged: list[tuple[ExperimentResult | ExperimentFailure, float]] = []
    for experiment_id in ids:
        outcome, wall_s = (restored.get(experiment_id)
                           or computed[experiment_id])
        merged.append((outcome, wall_s))
        if isinstance(outcome, ExperimentFailure):
            observer.count("experiments_failed")
            observer.event("experiment failed",
                           experiment=experiment_id,
                           error=outcome.error_type)
            continue
        observer.observe("experiment_duration_s", wall_s)
        observer.event("experiment finished", experiment=experiment_id,
                       wall_s=wall_s)
    return merged


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-experiments`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids to run")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument("--list", action="store_true",
                        help="list known experiments")
    parser.add_argument("--n-drives", type=int, default=None,
                        help="fleet size (default 4000; the paper's fleet "
                             "is 23395)")
    parser.add_argument("--seed", type=int, default=None,
                        help="fleet seed (default 42)")
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="also write the rendered results to this file")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the experiment fan-out "
                             "(0 = one per CPU; default 1, serial)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="persist each finished experiment here "
                             "(atomic per-experiment JSON files)")
    parser.add_argument("--resume", action="store_true",
                        help="restore finished experiments from "
                             "--checkpoint-dir and run only the rest")
    parser.add_argument("--keep-going", action="store_true",
                        help="record a failing experiment and continue "
                             "the sweep instead of aborting (exit 1 if "
                             "anything failed)")
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")

    if args.n_drives is not None or args.seed is not None:
        from repro.experiments.common import configure_default_fleet
        configure_default_fleet(n_drives=args.n_drives, seed=args.seed)

    if args.list:
        for experiment_id, (_, description) in EXPERIMENTS.items():
            print(f"{experiment_id:20s} {description}")
        return 0
    ids = list(EXPERIMENTS) if args.all else args.ids
    if not ids:
        parser.print_help()
        return 2
    try:
        pairs = run_many(ids, jobs=args.jobs,
                         checkpoint_dir=args.checkpoint_dir,
                         resume=args.resume, keep_going=args.keep_going)
    except ReproError as error:
        print(error, file=sys.stderr)
        return 1
    results = []
    failures = []
    for experiment_id, (outcome, wall_s) in zip(ids, pairs):
        results.append(outcome)
        print(outcome)
        if isinstance(outcome, ExperimentFailure):
            failures.append(outcome)
            print(f"[{experiment_id}] FAILED after "
                  f"{format_duration(wall_s)}")
        else:
            print(f"[{experiment_id}] finished in {format_duration(wall_s)}")
        print()
    if args.output:
        from repro.reporting.report import save_results
        save_results(results, args.output)
        print(f"results written to {args.output}")
    if failures:
        print(f"{len(failures)} of {len(ids)} experiment(s) failed: "
              f"{', '.join(f.experiment_id for f in failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
