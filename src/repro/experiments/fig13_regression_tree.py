"""Figure 13: the regression-tree model for Group 1 degradation prediction.

The paper renders the Group 1 tree (splits on POH, TC, SUT, RUE, SER) and
notes that Group 3's degradation "can be easily described by using only
one health attribute, i.e., R-RSC", while POH/TC/RUE dominate Groups 1
and 2.
"""

from __future__ import annotations

from repro.core.prediction import DegradationPredictor
from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.experiments.common import ExperimentResult, default_report


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 13: the regression-tree model for Group 1 degradation prediction."""
    report = report if report is not None else default_report()
    predictor = DegradationPredictor()
    reports = predictor.evaluate_all(report.dataset, report.categorization)

    tree_text = predictor.tree_for(FailureType.LOGICAL).export_text()
    importances = {
        f"group{failure_type.paper_group_number}":
            dict(sorted(pred.feature_importances.items(),
                        key=lambda kv: -kv[1])[:3])
        for failure_type, pred in reports.items()
    }
    g3_top = next(iter(importances["group3"]))
    rendered = "\n".join([
        "Figure 13: regression tree for Group 1 degradation prediction",
        "(value  sample-share  [split])",
        "",
        tree_text,
        "",
        "top-3 feature importances per group:",
        *(f"  {name}: " + ", ".join(f"{a}={v:.2f}" for a, v in imp.items())
          for name, imp in importances.items()),
        "",
        f"Group 3 dominant feature: {g3_top} (paper: R-RSC describes Group 3 "
        "alone)",
    ])
    return ExperimentResult(
        experiment_id="fig13",
        title="Group 1 degradation regression tree",
        paper_reference="G1 tree splits on POH/TC/SUT/RUE/SER; G3 described "
                        "by R-RSC alone",
        data={
            "tree_text": tree_text,
            "importances": importances,
            "g3_dominant_feature": g3_top,
        },
        rendered=rendered,
    )
