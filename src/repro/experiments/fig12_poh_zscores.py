"""Figure 12: temporal z-scores of power-on hours (POH).

The paper: "the failed drives in Group 3 display the most significant
difference from good drives in terms of the total time that drives are
powered on" — head failures hit old drives; Group 2 sits closest to the
good population.
"""

from __future__ import annotations

import numpy as np

from repro.core.diagnosis import temporal_group_z_scores
from repro.core.pipeline import CharacterizationReport
from repro.experiments.common import ExperimentResult, default_report
from repro.reporting.figures import ascii_series


def run(report: CharacterizationReport | None = None) -> ExperimentResult:
    """Render Figure 12: temporal z-scores of power-on hours (POH)."""
    report = report if report is not None else default_report()
    by_group = temporal_group_z_scores(
        report.dataset, report.categorization, "POH"
    )
    lags = next(iter(by_group.values())).lags_hours.astype(np.float64)
    series = {
        f"group{scores.failure_type.paper_group_number}": scores.z_scores
        for scores in by_group.values()
    }
    means = {
        f"group{scores.failure_type.paper_group_number}": scores.mean_z()
        for scores in by_group.values()
    }
    most_negative = min(means, key=lambda k: means[k])
    least_negative = max(means, key=lambda k: means[k])
    rendered = "\n".join([
        ascii_series(
            lags, series, height=14, width=70,
            title="Figure 12: temporal z-scores of POH (hours before failure)",
        ),
        "",
        "mean z per group: " + ", ".join(
            f"{name}={value:.1f}" for name, value in sorted(means.items())
        ),
        f"oldest population (most negative): {most_negative} (paper: group3); "
        f"closest to good: {least_negative} (paper: group2)",
    ])
    return ExperimentResult(
        experiment_id="fig12",
        title="Temporal z-scores of power-on hours",
        paper_reference="Group 3 most negative (oldest drives); Group 2 "
                        "closest to the good population",
        data={"lags": lags, "series": series, "means": means,
              "most_negative": most_negative,
              "least_negative": least_negative},
        rendered=rendered,
    )
