"""Feature statistics over health-record time series.

The paper's failure records carry, per read/write attribute, two derived
statistics — "standard deviation of the values in the last 24 hours and
change rate of the values" — computed here, together with the POH
smoothing of Section IV-D (the health value steps down only every 876
hours, so a small per-hour constant restores a usable time signal before
correlation analysis).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

#: Default look-back of the derived statistics, hours.
FEATURE_WINDOW_HOURS = 24

#: Per-sample constant added to POH between consecutive samples, as the
#: paper does "to reflect the one-hour interval between two consecutive
#: samples".
POH_SMOOTHING_PER_HOUR = 1.0e-3


def rolling_std(series: np.ndarray,
                window: int = FEATURE_WINDOW_HOURS) -> float:
    """Standard deviation of the trailing ``window`` samples."""
    series = _series(series)
    tail = series[-window:]
    return float(np.std(tail))


def change_rate(series: np.ndarray,
                window: int = FEATURE_WINDOW_HOURS) -> float:
    """Least-squares slope (units per hour) of the trailing window.

    A regression slope is used rather than the end-to-start difference so
    a single noisy endpoint cannot dominate the rate.
    """
    series = _series(series)
    tail = series[-window:]
    if tail.shape[0] < 2:
        return 0.0
    t = np.arange(tail.shape[0], dtype=np.float64)
    t -= t.mean()
    denominator = float(np.sum(t * t))
    if denominator == 0.0:
        return 0.0
    return float(np.sum(t * (tail - tail.mean())) / denominator)


def smooth_poh(poh_series: np.ndarray, hours: np.ndarray,
               per_hour: float = POH_SMOOTHING_PER_HOUR) -> np.ndarray:
    """Apply the paper's POH smoothing.

    The recorded POH health value is a step function (one unit per 876
    power-on hours); adding ``per_hour`` per elapsed hour makes consecutive
    samples distinct so correlations inside short windows are defined.
    """
    poh_series = _series(poh_series)
    hours = np.asarray(hours, dtype=np.float64).ravel()
    if hours.shape != poh_series.shape:
        raise ReproError("POH series and hours must align")
    return poh_series + per_hour * (hours - hours[0])


def _series(series: np.ndarray) -> np.ndarray:
    series = np.asarray(series, dtype=np.float64).ravel()
    if series.shape[0] == 0:
        raise ReproError("empty series")
    return series
