"""Correlation measures used by the attribute-influence analysis.

Figure 9 correlates the read/write attributes with the degradation value
inside each group's window; Figure 10 correlates the environmental
attributes with the dominant read/write attributes over three horizons.
Pearson correlation is the workhorse; Spearman is provided for the
robustness ablation.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ReproError


def pearson(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation; 0.0 when either series is constant.

    Constant series carry no correlation information (the covariance is
    identically zero), so returning 0 rather than NaN keeps attribute
    sweeps well-defined when an attribute is frozen inside a window.
    """
    a, b = _aligned(a, b)
    if np.all(a == a[0]) or np.all(b == b[0]):
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation; 0.0 when either series is constant."""
    a, b = _aligned(a, b)
    if np.all(a == a[0]) or np.all(b == b[0]):
        return 0.0
    rho, _ = stats.spearmanr(a, b)
    return float(rho)


def pearson_matrix(matrix: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Pearson correlation of each column of ``matrix`` with ``reference``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if matrix.ndim != 2 or reference.ndim != 1:
        raise ReproError("expected a 2-D matrix and a 1-D reference series")
    if matrix.shape[0] != reference.shape[0]:
        raise ReproError("matrix rows must align with the reference series")
    return np.array(
        [pearson(matrix[:, j], reference) for j in range(matrix.shape[1])]
    )


def _aligned(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ReproError("correlation inputs must have equal length")
    if a.shape[0] < 2:
        raise ReproError("correlation needs at least two observations")
    return a, b
