"""Two-population z-scores (Equation 7) and their temporal extension.

Section V-A quantifies how an attribute differs between a failure group
and the good-drive population with

``z_a = (m_f - m_g) / sqrt(s2_f / n_f + s2_g / n_g)``

and extends the calculation over the 20-day pre-failure timeline: at each
number of hours before failure, the failure-group records observed at
that lag are compared against *all* good-drive records (Figures 11/12).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.smart.profile import HealthProfile


def two_population_z(failed_values: np.ndarray,
                     good_values: np.ndarray) -> float:
    """Equation (7): standardized mean difference of two samples."""
    failed_values = _sample(failed_values, "failed")
    good_values = _sample(good_values, "good")
    mean_f = float(failed_values.mean())
    mean_g = float(good_values.mean())
    var_f = float(failed_values.var(ddof=0))
    var_g = float(good_values.var(ddof=0))
    denominator = np.sqrt(var_f / failed_values.shape[0]
                          + var_g / good_values.shape[0])
    if denominator == 0.0:
        return 0.0 if mean_f == mean_g else np.inf * np.sign(mean_f - mean_g)
    return (mean_f - mean_g) / denominator


def temporal_z_scores(failed_profiles: list[HealthProfile],
                      good_values: np.ndarray, attribute: str,
                      max_lag_hours: int = 480,
                      step_hours: int = 8) -> tuple[np.ndarray, np.ndarray]:
    """Z-score of ``attribute`` at each lag before failure.

    Parameters
    ----------
    failed_profiles:
        Profiles of one failure group (normalized or raw — the z-score is
        scale-covariant either way).
    good_values:
        All good-drive values of the attribute, pooled.
    attribute:
        Symbol of the attribute to analyze.
    max_lag_hours, step_hours:
        Timeline resolution; the paper plots lags 0..480 hours.

    Returns
    -------
    (lags, z_scores):
        Lags (hours before failure) and the Eq. (7) score at each lag.
        Lags at which fewer than two failure-group records exist yield
        ``nan``.
    """
    if not failed_profiles:
        raise ReproError("temporal z-scores need at least one failed profile")
    good_values = _sample(np.asarray(good_values, dtype=np.float64), "good")
    lags = np.arange(0, max_lag_hours + 1, step_hours, dtype=np.int64)

    columns = []
    lags_before = []
    for profile in failed_profiles:
        columns.append(profile.column(attribute))
        lags_before.append(profile.hours_before_failure())
    z_scores = np.full(lags.shape[0], np.nan)
    for index, lag in enumerate(lags):
        at_lag = [
            values[lag_array == lag]
            for values, lag_array in zip(columns, lags_before)
        ]
        pooled = np.concatenate(at_lag) if at_lag else np.empty(0)
        if pooled.shape[0] >= 2:
            z_scores[index] = two_population_z(pooled, good_values)
    return lags, z_scores


def _sample(values: np.ndarray, name: str) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.shape[0] < 2:
        raise ReproError(f"{name} sample needs at least two values")
    return values
