"""Failure-rate statistics: AFR and Weibull failure-time fits.

The paper's related work (Section II-B) frames disk reliability in
annual(ized) failure/replacement rates — Schroeder & Gibson's "typically
exceeded 1%, with 2-4% common and up to 13%", Gray's 3-6%, the Internet
Archive's 2-6% — and cites Xin et al. on infant mortality.  This module
provides the standard quantities for placing a fleet in that context:

* the annualized failure rate implied by an observation period,
* a Weibull fit of the failure times (shape < 1 = infant-mortality-
  dominated hazard, shape ~ 1 = constant hazard, shape > 1 = wear-out).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ReproError

#: Hours per year used by the AFR convention (365.25 days).
HOURS_PER_YEAR = 8766.0


def annualized_failure_rate(n_failed: int, n_drives: int,
                            period_hours: float) -> float:
    """AFR: failures per drive-year of exposure.

    Surviving drives contribute the full period of exposure; failed
    drives are (conservatively, and conventionally) also counted at the
    full period, matching how the cited field studies report replacement
    rates.
    """
    if n_drives <= 0 or n_failed < 0 or n_failed > n_drives:
        raise ReproError("inconsistent drive counts")
    if period_hours <= 0:
        raise ReproError("period_hours must be positive")
    drive_years = n_drives * period_hours / HOURS_PER_YEAR
    return n_failed / drive_years


@dataclass(frozen=True, slots=True)
class WeibullFit:
    """Maximum-likelihood Weibull fit of failure times."""

    shape: float
    scale: float
    n_samples: int

    @property
    def hazard_is_decreasing(self) -> bool:
        """Shape < 1: infant-mortality-dominated hazard."""
        return self.shape < 1.0

    @property
    def hazard_is_increasing(self) -> bool:
        """Shape > 1: wear-out-dominated hazard."""
        return self.shape > 1.0

    def survival(self, t: np.ndarray | float) -> np.ndarray | float:
        """P(failure time > t)."""
        t = np.asarray(t, dtype=np.float64)
        value = np.exp(-(np.maximum(t, 0.0) / self.scale) ** self.shape)
        return float(value) if value.ndim == 0 else value

    def hazard(self, t: np.ndarray | float) -> np.ndarray | float:
        """Instantaneous failure rate at time t."""
        t = np.asarray(t, dtype=np.float64)
        value = (self.shape / self.scale
                 * (np.maximum(t, 1.0e-12) / self.scale) ** (self.shape - 1.0))
        return float(value) if value.ndim == 0 else value


def fit_weibull(failure_hours: np.ndarray) -> WeibullFit:
    """MLE Weibull fit (location pinned at zero) of failure times."""
    failure_hours = np.asarray(failure_hours, dtype=np.float64).ravel()
    if failure_hours.shape[0] < 3:
        raise ReproError("need at least three failure times to fit")
    if np.any(failure_hours <= 0):
        raise ReproError("failure times must be positive")
    shape, _, scale = stats.weibull_min.fit(failure_hours, floc=0.0)
    return WeibullFit(shape=float(shape), scale=float(scale),
                      n_samples=failure_hours.shape[0])
