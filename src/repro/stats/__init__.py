"""Statistical analysis utilities.

Box-chart summaries (Figure 2), decile summaries (Figure 6), Pearson
correlation (Figures 9/10), the Eq. (7) two-population z-score
(Figures 11/12) and the rolling feature statistics of the 30-feature
failure records.
"""

from repro.stats.afr import (
    WeibullFit,
    annualized_failure_rate,
    fit_weibull,
)
from repro.stats.correlation import pearson, pearson_matrix, spearman
from repro.stats.features import change_rate, rolling_std, smooth_poh
from repro.stats.summary import BoxSummary, box_summary, deciles
from repro.stats.zscore import two_population_z, temporal_z_scores

__all__ = [
    "WeibullFit",
    "annualized_failure_rate",
    "fit_weibull",
    "pearson",
    "pearson_matrix",
    "spearman",
    "change_rate",
    "rolling_std",
    "smooth_poh",
    "BoxSummary",
    "box_summary",
    "deciles",
    "two_population_z",
    "temporal_z_scores",
]
