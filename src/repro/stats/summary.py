"""Distribution summaries: box-chart statistics and deciles.

Figure 2 of the paper shows box charts of the twelve normalized
attributes over the failure records; Figure 6 compares attribute
distributions between good records and each failure group using "deciles
of the cumulative distribution ... the first nine deciles to avoid the
skew of outliers".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True, slots=True)
class BoxSummary:
    """Tukey box-chart statistics of one sample."""

    minimum: float
    lower_whisker: float
    first_quartile: float
    median: float
    third_quartile: float
    upper_whisker: float
    maximum: float
    n_outliers: int

    @property
    def interquartile_range(self) -> float:
        return self.third_quartile - self.first_quartile

    @property
    def spread(self) -> float:
        """Whisker-to-whisker spread: the paper's notion of "variation"."""
        return self.upper_whisker - self.lower_whisker


def box_summary(values: np.ndarray, *, whisker: float = 1.5) -> BoxSummary:
    """Compute box-chart statistics with Tukey whiskers.

    Whiskers extend to the most extreme values within ``whisker`` IQRs of
    the quartiles; values beyond are counted as outliers.
    """
    values = _clean(values)
    q1, q2, q3 = np.percentile(values, [25.0, 50.0, 75.0])
    iqr = q3 - q1
    low_fence = q1 - whisker * iqr
    high_fence = q3 + whisker * iqr
    inside = values[(values >= low_fence) & (values <= high_fence)]
    # With a degenerate IQR every equal value is "inside"; guard anyway.
    if inside.shape[0] == 0:
        inside = values
    return BoxSummary(
        minimum=float(values.min()),
        # Whiskers are clamped to the box so sparse samples cannot place
        # a whisker inside the interquartile range.
        lower_whisker=float(min(inside.min(), q1)),
        first_quartile=float(q1),
        median=float(q2),
        third_quartile=float(q3),
        upper_whisker=float(max(inside.max(), q3)),
        maximum=float(values.max()),
        n_outliers=int(values.shape[0] - inside.shape[0]),
    )


def deciles(values: np.ndarray, *, count: int = 9) -> np.ndarray:
    """Return the first ``count`` deciles of the sample (paper default 9).

    The paper displays deciles 1..9 — dropping the extremes — because
    quantiles "are more robust ... to outliers and noise" than the full
    CDF.
    """
    values = _clean(values)
    if not 1 <= count <= 9:
        raise ReproError("decile count must lie in 1..9")
    quantiles = np.arange(1, count + 1) * 10.0
    return np.percentile(values, quantiles)


def _clean(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.shape[0] == 0:
        raise ReproError("cannot summarize an empty sample")
    if not np.all(np.isfinite(values)):
        raise ReproError("sample contains non-finite values")
    return values
