"""Deterministic, seeded corruption of datasets and cache entries.

Field SMART telemetry does not fail politely: samples go missing,
sensors black out, decoders emit wild values, collectors upload rows
twice or out of order, and drives get pulled before their last batch
lands.  :func:`inject_dataset` reproduces exactly those failure shapes
on a clean :class:`~repro.data.dataset.DiskDataset`, driven by a
:class:`~repro.faults.config.ChaosConfig`.

Two properties make the injectors usable as a test harness rather than
a fuzzer:

* **Determinism** — every decision draws from a
  :func:`repro.sim.rng.child_rng` stream keyed by
  ``(seed, drive serial, fault class)``, so equal configs corrupt equal
  datasets byte for byte, and adding a fault class never perturbs the
  streams of the others.
* **Leniency** — the output is a list of :class:`RawProfile` records,
  a container with *no* validation, because the whole point is to
  produce data that :class:`~repro.smart.profile.HealthProfile` would
  reject.  Feed them to :func:`repro.data.sanitize.sanitize_profiles`
  to exercise the quarantine path.

:func:`corrupt_cache_entry` covers the one fault class that lives on
disk instead of in the dataset: bit flips inside a stored
:class:`~repro.data.cache.DatasetCache` entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.dataset import DiskDataset
from repro.data.sanitize import RawProfile
from repro.errors import FaultInjectionError
from repro.faults.config import ChaosConfig
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.sim.rng import child_rng

#: Magnitude of injected outliers relative to normal values.  Large
#: enough that the sanitizer's conservative screen cannot miss them.
OUTLIER_SCALE = 1.0e6

#: Fixed application order; later injectors see the output of earlier
#: ones, so this order is part of the determinism contract.
FAULT_ORDER = ("truncate", "drop", "duplicate", "disorder",
               "blackout", "nan", "outlier")


@dataclass(slots=True)
class FaultLog:
    """What one injection pass actually did, for reports and tests.

    ``counts`` holds affected units per fault class (samples for
    sample-level faults, drives for drive-level ones); ``by_drive``
    maps each corrupted serial to the classes that hit it.
    """

    seed: int
    counts: dict[str, int] = field(default_factory=dict)
    by_drive: dict[str, list[str]] = field(default_factory=dict)

    def record(self, fault: str, serial: str, units: int = 1) -> None:
        if units <= 0:
            return
        self.counts[fault] = self.counts.get(fault, 0) + units
        classes = self.by_drive.setdefault(serial, [])
        if fault not in classes:
            classes.append(fault)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def to_dict(self) -> dict[str, object]:
        """Deterministic plain-dict form for the data-quality section."""
        return {
            "seed": self.seed,
            "total_faults": self.total,
            "counts": {fault: self.counts[fault]
                       for fault in sorted(self.counts)},
            "drives_affected": len(self.by_drive),
        }


def _rng(config: ChaosConfig, serial: str, fault: str) -> np.random.Generator:
    return child_rng(config.seed, "chaos", serial, fault)


def _inject_profile(serial: str, hours: np.ndarray, matrix: np.ndarray,
                    config: ChaosConfig, log: FaultLog,
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Apply every dataset-level fault class to one drive, in order."""
    if config.truncate_rate and len(hours) >= 2:
        rng = _rng(config, serial, "truncate")
        if rng.random() < config.truncate_rate:
            keep = int(rng.integers(1, len(hours)))
            log.record("truncate", serial, len(hours) - keep)
            hours, matrix = hours[:keep], matrix[:keep]

    if config.drop_rate and len(hours):
        rng = _rng(config, serial, "drop")
        keep_mask = rng.random(len(hours)) >= config.drop_rate
        dropped = int(len(hours) - keep_mask.sum())
        if dropped:
            log.record("drop", serial, dropped)
            hours, matrix = hours[keep_mask], matrix[keep_mask]

    if config.duplicate_rate and len(hours):
        rng = _rng(config, serial, "duplicate")
        dup_mask = rng.random(len(hours)) < config.duplicate_rate
        if dup_mask.any():
            log.record("duplicate", serial, int(dup_mask.sum()))
            repeats = np.where(dup_mask, 2, 1)
            hours = np.repeat(hours, repeats)
            matrix = np.repeat(matrix, repeats, axis=0)

    if config.disorder_rate and len(hours) >= 3:
        rng = _rng(config, serial, "disorder")
        if rng.random() < config.disorder_rate:
            width = int(rng.integers(2, min(6, len(hours)) + 1))
            start = int(rng.integers(0, len(hours) - width + 1))
            log.record("disorder", serial, width)
            window = slice(start, start + width)
            hours = hours.copy()
            matrix = matrix.copy()
            hours[window] = hours[window][::-1]
            matrix[window] = matrix[window][::-1]

    if config.blackout_rate and len(hours):
        rng = _rng(config, serial, "blackout")
        if rng.random() < config.blackout_rate:
            attribute = int(rng.integers(0, matrix.shape[1]))
            span = int(rng.integers(1, len(hours) + 1))
            start = int(rng.integers(0, len(hours) - span + 1))
            log.record("blackout", serial, span)
            matrix = matrix.copy()
            matrix[start:start + span, attribute] = np.nan

    if config.nan_rate and len(hours):
        rng = _rng(config, serial, "nan")
        row_mask = rng.random(len(hours)) < config.nan_rate
        if row_mask.any():
            matrix = matrix.copy()
            for row in np.flatnonzero(row_mask):
                n_attrs = int(rng.integers(1, 4))
                columns = rng.choice(matrix.shape[1], size=n_attrs,
                                     replace=False)
                matrix[row, columns] = np.nan
            log.record("nan", serial, int(row_mask.sum()))

    if config.outlier_rate and len(hours):
        rng = _rng(config, serial, "outlier")
        row_mask = rng.random(len(hours)) < config.outlier_rate
        if row_mask.any():
            matrix = matrix.copy()
            for row in np.flatnonzero(row_mask):
                column = int(rng.integers(0, matrix.shape[1]))
                sign = 1.0 if rng.random() < 0.5 else -1.0
                matrix[row, column] = sign * OUTLIER_SCALE \
                    * (1.0 + rng.random())
            log.record("outlier", serial, int(row_mask.sum()))

    return hours, matrix


def inject_dataset(dataset: DiskDataset, config: ChaosConfig, *,
                   observer: PipelineObserver | None = None,
                   ) -> tuple[list[RawProfile], FaultLog]:
    """Corrupt ``dataset`` according to ``config``.

    Returns the corrupted drives as lenient :class:`RawProfile` records
    (dataset order preserved) plus the :class:`FaultLog` of what was
    done.  The input dataset is never mutated.  Equal ``config`` values
    yield byte-identical output.
    """
    obs = resolve_observer(observer)
    log = FaultLog(seed=config.seed)
    raw: list[RawProfile] = []
    with obs.span("inject-faults", n_drives=len(dataset.profiles),
                  seed=config.seed):
        for profile in dataset.profiles:
            hours, matrix = _inject_profile(
                profile.serial, profile.hours.copy(), profile.matrix.copy(),
                config, log,
            )
            raw.append(RawProfile(
                serial=profile.serial,
                hours=np.ascontiguousarray(hours),
                matrix=np.ascontiguousarray(matrix),
                failed=profile.failed,
                attributes=profile.attributes,
            ))
    for fault, units in sorted(log.counts.items()):
        obs.count(f"faults_injected_{fault}", units)
    obs.count("faults_injected", log.total)
    obs.event("faults injected", seed=config.seed, total=log.total,
              drives_affected=len(log.by_drive))
    return raw, log


def corrupt_cache_entry(path: str | Path, *, seed: int = 0,
                        n_flips: int = 8) -> int:
    """Flip ``n_flips`` deterministic bits inside the file at ``path``.

    Models silent on-disk corruption of a cache entry.  Returns the
    number of bits flipped (0 for an empty file).  The positions derive
    from ``seed`` and the file size, so the corruption is reproducible.
    """
    path = Path(path)
    if n_flips < 1:
        raise FaultInjectionError(f"n_flips must be >= 1, got {n_flips}")
    payload = bytearray(path.read_bytes())
    if not payload:
        return 0
    rng = child_rng(seed, "chaos", path.name, "bitflip")
    flips = min(n_flips, len(payload))
    positions = rng.choice(len(payload), size=flips, replace=False)
    for position in positions:
        payload[int(position)] ^= 1 << int(rng.integers(0, 8))
    path.write_bytes(bytes(payload))
    return flips


def corrupt_cache_entries(directory: str | Path, config: ChaosConfig,
                          ) -> list[Path]:
    """Bit-flip each ``.npz`` entry under ``directory`` with probability
    ``config.bitflip_rate``; returns the corrupted paths (sorted)."""
    directory = Path(directory)
    corrupted: list[Path] = []
    for path in sorted(directory.glob("*.npz")):
        rng = child_rng(config.seed, "chaos", path.name, "bitflip-select")
        if rng.random() < config.bitflip_rate:
            corrupt_cache_entry(path, seed=config.seed)
            corrupted.append(path)
    return corrupted
