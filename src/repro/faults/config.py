"""Chaos configuration: which faults to inject, how often, and the seed.

A :class:`ChaosConfig` quantifies one corruption regime — a rate per
fault class plus the seed that makes the whole regime deterministic.
Two injections with equal configs produce byte-identical corrupted
datasets, so every chaos experiment is exactly re-runnable.

The CLI accepts the compact ``key=value`` spec form via
:func:`parse_chaos_spec`::

   --inject-faults 'drop=0.05,nan=0.02,truncate=0.1,seed=7'

Rates are probabilities: per *sample* for ``drop``/``duplicate``/
``nan``/``outlier``, per *drive* for ``blackout``/``disorder``/
``truncate``, and per *cache entry* for ``bitflip``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import FaultInjectionError

#: Spec keys accepted by :func:`parse_chaos_spec`, mapped to config fields.
SPEC_KEYS = {
    "drop": "drop_rate",
    "duplicate": "duplicate_rate",
    "disorder": "disorder_rate",
    "truncate": "truncate_rate",
    "blackout": "blackout_rate",
    "nan": "nan_rate",
    "outlier": "outlier_rate",
    "bitflip": "bitflip_rate",
    "seed": "seed",
}


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """Rates per fault class plus the seed driving every injector.

    Parameters
    ----------
    seed:
        Root of the per-drive/per-fault random streams; equal seeds
        reproduce the corruption bit for bit.
    drop_rate:
        Per-sample probability of the sample never being recorded.
    duplicate_rate:
        Per-sample probability of the sample appearing twice.
    disorder_rate:
        Per-drive probability of a batch of adjacent samples arriving
        out of order.
    truncate_rate:
        Per-drive probability of the profile being cut short (a drive
        replaced before its telemetry finished uploading).
    blackout_rate:
        Per-drive probability of one attribute going dark (NaN) for a
        contiguous span — a sensor or collector outage.
    nan_rate:
        Per-sample probability of a partial NaN burst across a few
        attributes.
    outlier_rate:
        Per-sample probability of a wild out-of-range value (sensor
        glitch / decoding error).
    bitflip_rate:
        Per-entry probability used by
        :func:`repro.faults.injectors.corrupt_cache_entry`.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    disorder_rate: float = 0.0
    truncate_rate: float = 0.0
    blackout_rate: float = 0.0
    nan_rate: float = 0.0
    outlier_rate: float = 0.0
    bitflip_rate: float = 0.0

    def __post_init__(self) -> None:
        for spec in fields(self):
            if not spec.name.endswith("_rate"):
                continue
            value = getattr(self, spec.name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(
                    f"{spec.name} must be in [0, 1], got {value!r}"
                )

    @property
    def active(self) -> bool:
        """Whether any fault class has a nonzero rate."""
        return any(
            getattr(self, spec.name) > 0.0
            for spec in fields(self) if spec.name.endswith("_rate")
        )

    def rates(self) -> dict[str, float]:
        """Mapping of fault-class spec key to its configured rate."""
        return {
            key: getattr(self, field_name)
            for key, field_name in SPEC_KEYS.items()
            if field_name != "seed"
        }


def parse_chaos_spec(spec: str) -> ChaosConfig:
    """Parse ``"drop=0.1,nan=0.05,seed=7"`` into a :class:`ChaosConfig`.

    Keys are the short fault-class names of :data:`SPEC_KEYS`; unknown
    keys, repeated keys and unparsable values raise
    :class:`~repro.errors.FaultInjectionError` with the offending token.
    """
    values: dict[str, float | int] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        key, sep, raw = token.partition("=")
        key = key.strip()
        if not sep:
            raise FaultInjectionError(
                f"chaos spec token {token!r} is not of the form key=value"
            )
        if key not in SPEC_KEYS:
            raise FaultInjectionError(
                f"unknown fault class {key!r}; expected one of "
                f"{', '.join(SPEC_KEYS)}"
            )
        field_name = SPEC_KEYS[key]
        if field_name in values:
            raise FaultInjectionError(f"duplicate chaos spec key {key!r}")
        try:
            values[field_name] = (int(raw) if key == "seed"
                                  else float(raw))
        except ValueError:
            raise FaultInjectionError(
                f"cannot parse {raw.strip()!r} as a value for {key!r}"
            ) from None
    if not any(name.endswith("_rate") for name in values):
        raise FaultInjectionError(
            f"chaos spec {spec!r} names no fault class; expected e.g. "
            "'drop=0.05,seed=7'"
        )
    return ChaosConfig(**values)  # type: ignore[arg-type]
