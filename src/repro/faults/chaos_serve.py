"""Serving-plane chaos: seeded crash drills for the WAL recovery path.

Where :mod:`repro.faults.injectors` corrupts *data*, this module kills
*processes*: it drives a :class:`~repro.serve.shard.ShardSet` through a
scripted ingest stream while killing shard workers at seeded points,
then lets the caller compare the surviving verdict stream byte for byte
against an uninterrupted run.  The paper's serving claim — crash
recovery reproduces the exact pre-crash state — is only testable by
actually crashing, so the drill is a library function rather than a
shell script: deterministic (a seed fully fixes the kill schedule),
backend-agnostic (thread kills via the crash sentinel, process kills
via SIGKILL), and assertion-friendly (it returns the verdict lines in
stream order).

:class:`BlackholeSink` is the delivery-plane counterpart: an alert sink
that refuses every emit, for drills that pin the dead-letter file's
contents under total sink outage.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

import numpy as np

from repro.errors import FaultInjectionError, ShardRecoveringError, SinkError
from repro.serve.scorer import MonitorVerdict
from repro.serve.shard import ShardSet
from repro.serve.sinks import AlertSink

#: How long one drill waits for a killed shard to finish recovering
#: before declaring the supervisor broken.
DEFAULT_RECOVERY_TIMEOUT_S = 60.0


def kill_plan(n_blocks: int, n_kills: int, n_shards: int, *,
              seed: int = 0) -> list[tuple[int, int]]:
    """A seeded schedule of ``(block_index, shard)`` kill points.

    Kills land strictly between block submissions — *before* the block
    at ``block_index`` is submitted — at distinct positions chosen
    uniformly from the stream's interior (never before block 0, so
    every drill scores something pre-crash).  Equal arguments produce
    the identical plan, which is what makes a crash drill re-runnable.
    """
    if n_kills < 0:
        raise FaultInjectionError(f"n_kills must be >= 0, got {n_kills}")
    if n_shards < 1:
        raise FaultInjectionError(f"n_shards must be >= 1, got {n_shards}")
    if n_kills >= n_blocks:
        raise FaultInjectionError(
            f"cannot place {n_kills} kills in a {n_blocks}-block stream "
            f"(need at least one more block than kills)")
    rng = np.random.default_rng(seed)
    positions = sorted(rng.choice(
        np.arange(1, n_blocks), size=n_kills, replace=False).tolist())
    shards = rng.integers(0, n_shards, size=n_kills).tolist()
    return [(int(position), int(shard))
            for position, shard in zip(positions, shards)]


def run_chaos_stream(shards: ShardSet,
                     blocks: Sequence[tuple[Sequence[str], Sequence[int],
                                            np.ndarray]],
                     plan: Sequence[tuple[int, int]] = (), *,
                     block_id_prefix: str = "chaos",
                     recovery_timeout_s: float = DEFAULT_RECOVERY_TIMEOUT_S,
                     ) -> list[str]:
    """Drive ``blocks`` through ``shards``, killing workers per ``plan``.

    Each block is submitted with a stable ``block_id``
    (``<prefix>-<index>``) and retried on
    :class:`~repro.errors.ShardRecoveringError` until it scores, so a
    block whose worker died in the ack gap — WAL-appended but
    unanswered — is recovered through the dedup cache rather than
    double-scored.  Before submitting block ``i``, every plan entry
    ``(i, shard)`` kills that shard abruptly (SIGKILL on the process
    backend).  Returns every verdict as its canonical JSON line, in
    stream order — byte-comparable against an uninterrupted run of the
    same blocks.

    Raises :class:`~repro.errors.FaultInjectionError` when a shard
    fails to recover within ``recovery_timeout_s`` — the drill's way of
    reporting a broken supervisor instead of hanging the suite.
    """
    schedule: dict[int, list[int]] = {}
    for position, shard in plan:
        if not 0 <= shard < shards.n_shards:
            raise FaultInjectionError(
                f"kill plan names shard {shard} of {shards.n_shards}")
        schedule.setdefault(int(position), []).append(int(shard))
    lines: list[str] = []
    for index, (serials, hours, matrix) in enumerate(blocks):
        for shard in schedule.get(index, ()):
            shards.kill_shard(shard)
        deadline = time.monotonic() + recovery_timeout_s
        while True:
            try:
                block = shards.submit_block(
                    serials, hours, matrix,
                    block_id=f"{block_id_prefix}-{index}")
            except ShardRecoveringError as error:
                if time.monotonic() > deadline:
                    raise FaultInjectionError(
                        f"shard {error.shard} did not recover within "
                        f"{recovery_timeout_s:g}s at block {index}"
                    ) from error
                time.sleep(min(0.02, max(error.retry_after_s, 0.001)))
                continue
            break
        lines.extend(block.to_json_lines())
    return lines


class BlackholeSink(AlertSink):
    """An alert sink that drops every delivery on the floor.

    ``emit`` always raises :class:`~repro.errors.SinkError` — the
    stand-in for a pager endpoint that is hard-down.  With a
    dead-letter file configured, every alert the daemon tried to send
    through this sink must appear there, byte for byte; the chaos
    tests pin exactly that.
    """

    kind = "blackhole"

    def __init__(self) -> None:
        self._attempts = 0

    @property
    def attempts(self) -> int:
        """Delivery attempts absorbed (including retries)."""
        return self._attempts

    def emit(self, verdict: MonitorVerdict) -> None:
        """Refuse the delivery."""
        self._attempts += 1
        raise SinkError(
            f"blackhole sink dropped alert for drive {verdict.serial}")

    def describe(self) -> str:
        """``blackhole`` (the sink has no destination by design)."""
        return self.kind


def verdict_lines(blocks: Sequence[Any]) -> list[str]:
    """Flatten scored blocks into one canonical-JSONL verdict stream.

    Convenience for drills that score reference streams through
    :meth:`~repro.serve.scorer.StreamScorer.score_block` and compare
    them against :func:`run_chaos_stream` output.
    """
    lines: list[str] = []
    for block in blocks:
        lines.extend(block.to_json_lines())
    return lines
