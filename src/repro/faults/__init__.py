"""Fault injection: deterministic chaos for the characterization pipeline.

The subsystem has two halves.  :mod:`repro.faults.config` quantifies a
corruption regime (:class:`ChaosConfig`, one rate per fault class plus a
seed, and the CLI spec parser).  :mod:`repro.faults.injectors` applies
it: :func:`inject_dataset` corrupts a dataset the way field telemetry
actually fails — dropped and duplicated samples, attribute blackouts,
NaN and outlier bursts, out-of-order timestamps, truncated profiles —
and :func:`corrupt_cache_entry` bit-flips on-disk cache entries.

Everything is seeded and deterministic: equal configs produce
byte-identical corruption, so chaos runs are re-runnable experiments,
not one-off fuzzing.  The corrupted output goes through
:func:`repro.data.sanitize.sanitize_profiles`, which quarantines what
cannot be repaired and yields a clean dataset plus a data-quality
report.

:mod:`repro.faults.chaos_serve` extends chaos to the *serving* plane:
seeded shard-kill drills (:func:`kill_plan`, :func:`run_chaos_stream`)
that verify WAL crash recovery reproduces the uninterrupted verdict
stream byte for byte, and :class:`BlackholeSink` for dead-letter
delivery drills.
"""

from repro.faults.chaos_serve import (
    BlackholeSink,
    kill_plan,
    run_chaos_stream,
    verdict_lines,
)
from repro.faults.config import SPEC_KEYS, ChaosConfig, parse_chaos_spec
from repro.faults.injectors import (
    FAULT_ORDER,
    FaultLog,
    RawProfile,
    corrupt_cache_entries,
    corrupt_cache_entry,
    inject_dataset,
)

__all__ = [
    "BlackholeSink",
    "SPEC_KEYS",
    "ChaosConfig",
    "parse_chaos_spec",
    "FAULT_ORDER",
    "FaultLog",
    "RawProfile",
    "corrupt_cache_entries",
    "corrupt_cache_entry",
    "inject_dataset",
    "kill_plan",
    "run_chaos_stream",
    "verdict_lines",
]
