"""Durable small-file writes shared across the library.

Several subsystems persist small control-plane files — checkpoint
documents, final state snapshots, port files, WAL snapshots — and all
of them need the same property: a crash (or power loss) mid-write must
leave either the previous file or the complete new one, never a torn
hybrid.  :func:`atomic_write_text` / :func:`atomic_write_bytes` are the
one implementation of the pattern the rest of the code refers to:

1. write the payload to a temporary file *in the destination
   directory* (so the final rename never crosses a filesystem);
2. flush and ``os.fsync`` the temporary file, making its *contents*
   durable before any name points at them;
3. ``os.replace`` it over the destination — atomic on POSIX.

Skipping step 2 is the classic tear: ``os.replace`` orders the rename
against nothing, so after power loss the new name can point at
zero-length or partial data.  ``experiments/checkpoint.py`` has always
followed the full pattern; this module extracts it so the serving
layer's snapshot and port files do too.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_bytes(path: str | Path, payload: bytes, *,
                       fsync: bool = True) -> Path:
    """Atomically replace ``path`` with ``payload``; returns the path.

    With ``fsync`` (the default) the payload is durable on disk before
    the rename, so the destination never names torn data even across
    power loss.  ``fsync=False`` keeps only the atomic-rename property
    (crash-consistent against process death, not power loss) — for
    advisory files where latency matters more than durability.

    The caller handles ``OSError`` (callers wrap it in their own typed
    error); the temporary file is removed on failure.
    """
    path = Path(path)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}-", suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except OSError:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str | Path, text: str, *,
                      fsync: bool = True) -> Path:
    """Atomically replace ``path`` with UTF-8 ``text``.

    The text twin of :func:`atomic_write_bytes`; same durability
    contract.
    """
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
