"""Loader for the public Backblaze drive-stats CSV format.

The paper's proprietary dataset cannot be redistributed; the closest
public substitute is Backblaze's drive-stats release — daily CSV files
with one row per drive per day and columns named
``smart_<id>_normalized`` / ``smart_<id>_raw`` plus a ``failure`` flag on
the drive's final day.  This loader maps those columns onto the Table I
attribute symbols and assembles per-drive :class:`HealthProfile` objects.

Backblaze samples are *daily*; the loader keeps one sample per day and
records its timestamps in hours (day index x 24) so the rest of the
pipeline — which only needs a monotone time axis — works unchanged.
Degradation windows extracted from daily data are therefore measured in
days rather than hours, which the experiment harness notes in its output.
"""

from __future__ import annotations

import csv
from collections import defaultdict
from datetime import date
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.data.dataset import DiskDataset
from repro.data.windows import truncate_to_policy
from repro.errors import DatasetError
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.smart.attributes import CHARACTERIZATION_ATTRIBUTES
from repro.smart.profile import (
    FAILED_OBSERVATION_HOURS,
    GOOD_OBSERVATION_HOURS,
    HealthProfile,
)

#: Mapping from Table I symbols to Backblaze drive-stats column names.
BACKBLAZE_COLUMN_MAP: dict[str, str] = {
    "RRER": "smart_1_normalized",
    "RSC": "smart_5_normalized",
    "SER": "smart_7_normalized",
    "RUE": "smart_187_normalized",
    "HFW": "smart_189_normalized",
    "HER": "smart_195_normalized",
    "CPSC": "smart_197_normalized",
    "SUT": "smart_3_normalized",
    "R-RSC": "smart_5_raw",
    "R-CPSC": "smart_197_raw",
    "POH": "smart_9_normalized",
    "TC": "smart_194_normalized",
}

_HOURS_PER_SAMPLE = 24  # Backblaze reports one sample per day


def load_backblaze_csv(paths: Iterable[str | Path], *,
                       model: str | None = None,
                       apply_policy: bool = True,
                       observer: PipelineObserver | None = None) -> DiskDataset:
    """Load one or more Backblaze daily CSV files into a dataset.

    Parameters
    ----------
    paths:
        Daily CSV files (any order); all days of the observation period.
    model:
        Optional drive model filter — the paper studies a single-model
        fleet, so analyses of mixed Backblaze data usually pass e.g.
        ``"ST4000DM000"`` here.
    apply_policy:
        Truncate profiles to the paper's observation policy (20 days
        failed / 7 days good).  Backblaze publishes much longer histories;
        truncation makes results comparable.
    observer:
        Telemetry sink; rows with entirely missing SMART payloads are
        counted under ``records_dropped``.
    """
    obs = resolve_observer(observer)
    samples: dict[str, list[tuple[int, bool, list[float]]]] = defaultdict(list)
    day_zero: date | None = None
    with obs.span("load-backblaze", model=model or "*"):
        for path in sorted(Path(p) for p in paths):
            day_zero = _ingest_file(path, model, samples, day_zero, obs)
        if not samples:
            raise DatasetError("no Backblaze rows matched the requested model")
        return _assemble_profiles(samples, apply_policy, obs)


def _assemble_profiles(samples: dict[str, list[tuple[int, bool, list[float]]]],
                       apply_policy: bool,
                       obs: PipelineObserver) -> DiskDataset:
    profiles = []
    for serial, rows in samples.items():
        rows.sort(key=lambda item: item[0])
        hours = np.array([hour for hour, _, _ in rows], dtype=np.int64)
        if np.any(np.diff(hours) <= 0):
            raise DatasetError(
                f"duplicate Backblaze rows for serial {serial!r}"
            )
        failed = rows[-1][1]  # the failure flag is set on the final day
        matrix = np.array([values for _, _, values in rows], dtype=np.float64)
        profile = HealthProfile(
            serial=serial,
            hours=hours,
            matrix=matrix,
            failed=failed,
            attributes=CHARACTERIZATION_ATTRIBUTES,
        )
        if apply_policy:
            # The policy limits are wall-clock (480 h failed / 168 h good);
            # with daily samples that is 20 and 7 samples respectively.
            profile = truncate_to_policy(
                profile,
                failed_hours=FAILED_OBSERVATION_HOURS // _HOURS_PER_SAMPLE,
                good_hours=GOOD_OBSERVATION_HOURS // _HOURS_PER_SAMPLE,
            )
        profiles.append(profile)
    obs.count("rows_loaded", sum(len(rows) for rows in samples.values()))
    obs.gauge("profiles_loaded", len(profiles))
    obs.event("backblaze dataset loaded", profiles=len(profiles))
    return DiskDataset(profiles)


def save_backblaze_csv(dataset: DiskDataset, directory: str | Path, *,
                       model: str = "RP-2015E",
                       hours_per_sample: int = _HOURS_PER_SAMPLE,
                       epoch: date = date(2015, 1, 1)) -> list[Path]:
    """Export a dataset as daily Backblaze drive-stats CSV files.

    The inverse of :func:`load_backblaze_csv`: profiles are downsampled
    to one record per ``hours_per_sample`` (keeping the final record so
    failure days survive) and written as one CSV per day with the
    standard Backblaze columns.  Useful for interchange with tools built
    around the drive-stats format and for testing the loader.

    Returns the written file paths, ordered by day.
    """
    unmapped = [s for s in dataset.attributes if s not in BACKBLAZE_COLUMN_MAP]
    if unmapped:
        raise DatasetError(
            f"attributes without Backblaze columns: {unmapped}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rows_by_day: dict[int, list[list[str]]] = defaultdict(list)
    for profile in dataset.profiles:
        for index in range(len(profile) - 1, -1, -hours_per_sample):
            day = int(profile.hours[index]) // hours_per_sample
            is_failure_day = profile.failed and index == len(profile) - 1
            day_date = date.fromordinal(epoch.toordinal() + day)
            rows_by_day[day].append([
                day_date.isoformat(),
                profile.serial,
                model,
                "4000000000000",
                "1" if is_failure_day else "0",
                *(repr(float(v)) for v in profile.matrix[index]),
            ])

    header = ["date", "serial_number", "model", "capacity_bytes", "failure",
              *(BACKBLAZE_COLUMN_MAP[s] for s in dataset.attributes)]
    paths: list[Path] = []
    for day, rows in sorted(rows_by_day.items()):
        path = directory / f"{date.fromordinal(epoch.toordinal() + day).isoformat()}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            writer.writerows(rows)
        paths.append(path)
    return paths


def _ingest_file(path: Path, model: str | None,
                 samples: dict[str, list[tuple[int, bool, list[float]]]],
                 day_zero: date | None,
                 obs: PipelineObserver) -> date | None:
    """Parse one daily CSV into ``samples``; returns the epoch day."""
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DatasetError(f"{path}: missing CSV header")
        missing = [
            column for column in ("date", "serial_number", "failure")
            if column not in reader.fieldnames
        ]
        if missing:
            raise DatasetError(f"{path}: missing Backblaze columns {missing}")
        for row in reader:
            if model is not None and row.get("model") != model:
                continue
            sample_date = date.fromisoformat(row["date"])
            if day_zero is None:
                day_zero = sample_date
            day_index = (sample_date - day_zero).days
            values = []
            for symbol in CHARACTERIZATION_ATTRIBUTES:
                text = row.get(BACKBLAZE_COLUMN_MAP[symbol], "")
                values.append(float(text) if text not in ("", None) else np.nan)
            # Rows with entirely missing SMART payloads are dropped; partially
            # missing values are forward-filled later by profile assembly.
            if all(np.isnan(v) for v in values):
                obs.count("records_dropped")
                continue
            values = [0.0 if np.isnan(v) else v for v in values]
            samples[row["serial_number"]].append(
                (day_index * _HOURS_PER_SAMPLE, row["failure"] == "1", values)
            )
    return day_zero
