"""Train/test splitting for the prediction experiments.

The paper's degradation-prediction protocol (Section V-B) randomly places
each health sample into a 70% training / 30% test partition; this module
provides that row-level split plus a drive-level variant that keeps all
samples of a drive on the same side (useful for leakage-free evaluation,
one of the library's extensions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError


@dataclass(frozen=True, slots=True)
class Split:
    """Index sets of one train/test partition."""

    train_indices: np.ndarray
    test_indices: np.ndarray

    def select(self, *arrays: np.ndarray) -> tuple[np.ndarray, ...]:
        """Return ``(a_train, a_test)`` pairs for each input array."""
        out: list[np.ndarray] = []
        for array in arrays:
            out.append(array[self.train_indices])
            out.append(array[self.test_indices])
        return tuple(out)


def train_test_split(n_samples: int, *, train_fraction: float = 0.7,
                     rng: np.random.Generator | None = None,
                     groups: np.ndarray | None = None) -> Split:
    """Randomly partition ``n_samples`` rows.

    Parameters
    ----------
    n_samples:
        Number of rows to split.
    train_fraction:
        Fraction assigned to the training side (paper: 0.7).
    rng:
        Random generator; a fixed default keeps experiments reproducible.
    groups:
        Optional per-row group labels (e.g. drive serial hashes).  When
        given, whole groups are assigned to one side, preventing samples
        of one drive from leaking across the partition.
    """
    if n_samples <= 1:
        raise DatasetError("need at least two samples to split")
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError("train_fraction must lie in (0, 1)")
    if rng is None:
        rng = np.random.default_rng(7)

    if groups is None:
        order = rng.permutation(n_samples)
        n_train = max(1, min(n_samples - 1, round(n_samples * train_fraction)))
        return Split(
            train_indices=np.sort(order[:n_train]),
            test_indices=np.sort(order[n_train:]),
        )

    groups = np.asarray(groups)
    if groups.shape[0] != n_samples:
        raise DatasetError("groups must label every sample")
    unique = rng.permutation(np.unique(groups))
    if unique.shape[0] < 2:
        raise DatasetError("group-level split needs at least two groups")
    n_train_groups = max(1, min(unique.shape[0] - 1,
                                round(unique.shape[0] * train_fraction)))
    train_groups = set(unique[:n_train_groups].tolist())
    mask = np.array([g in train_groups for g in groups.tolist()], dtype=bool)
    return Split(
        train_indices=np.flatnonzero(mask),
        test_indices=np.flatnonzero(~mask),
    )
