"""On-disk memoization of the pipeline's dataset-preparation work.

Normalizing a fleet and building its failure-record matrix are pure
functions of the raw dataset, yet the pipeline recomputed both on every
run.  :class:`DatasetCache` memoizes them between runs (and between
processes) under a content-addressed key:

``key = sha256(schema tag · attributes · per-profile serial/flag/hours/
matrix bytes · normalization params)``

so any change to the input data, the attribute set, the normalization
parameters or the cache schema yields a *different* key — stale entries
are never returned, they are simply never looked up again (an explicit
:meth:`clear` / :meth:`invalidate` reclaims the disk space).

Entries are single ``.npz`` files holding the normalized matrices (exact
``float64`` bytes — a cache hit is byte-identical to a recompute), the
fitted Eq. (1) extrema, and any *extra* named arrays the caller wants
memoized alongside (the pipeline stores the failure-record matrices this
way; see :func:`repro.core.records.failure_records_to_arrays`).  Keeping
the extras opaque keeps this module in the data layer — it never imports
from ``repro.core``.  Corrupt or truncated entries are treated as misses
and deleted.

Telemetry: ``cache_hits`` / ``cache_misses`` counters and
``cache-load`` / ``cache-store`` spans on the supplied observer.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.dataset import DiskDataset
from repro.errors import CacheError
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.smart.normalization import MinMaxNormalizer
from repro.smart.profile import HealthProfile

#: Bump whenever the stored layout or the normalization algorithm
#: changes; old entries then key differently and are never reused.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache location.
DEFAULT_CACHE_ENV = "REPRO_CACHE_DIR"

_ENTRY_SUFFIX = ".npz"
_EXTRA_PREFIX = "extra__"
#: In-progress writes use a distinct suffix so a crash mid-store can
#: never leave a file that entry globs or lookups would mistake for a
#: finished entry.
_TEMP_SUFFIX = ".tmp"

#: Everything a damaged ``.npz`` can raise.  ``np.load`` surfaces
#: truncation and bit rot as ``zipfile.BadZipFile`` or ``zlib.error``
#: (neither derives from ``OSError``/``ValueError``), garbage bytes as
#: ``ValueError``, and missing keys as ``KeyError``.
_ENTRY_READ_ERRORS = (OSError, KeyError, ValueError, CacheError,
                      zipfile.BadZipFile, zlib.error)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(DEFAULT_CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True, slots=True)
class CachedDataset:
    """What one cache entry restores: the normalized dataset view plus
    the caller's extra arrays (e.g. the failure-record matrices)."""

    dataset: DiskDataset
    extras: dict[str, np.ndarray] = field(default_factory=dict)


class DatasetCache:
    """Content-addressed store for normalized datasets.

    Parameters
    ----------
    directory:
        Where entries live; created on first use.  One file per entry.
    observer:
        Telemetry sink for hit/miss counters and load/store spans.
    """

    def __init__(self, directory: str | Path | None = None, *,
                 observer: PipelineObserver | None = None) -> None:
        self._dir = Path(directory) if directory is not None \
            else default_cache_dir()
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CacheError(
                f"cannot create cache directory {self._dir}: {error}"
            ) from error
        self._observer = resolve_observer(observer)
        self._hits = 0
        self._misses = 0
        self._sweep_stale_temps()

    def _sweep_stale_temps(self) -> None:
        """Remove temp files a killed store left behind (best effort —
        a concurrent writer's fresh temp disappearing is harmless, it
        fails that one store, not the cache)."""
        for stale in self._dir.glob(f"*{_TEMP_SUFFIX}"):
            stale.unlink(missing_ok=True)

    # -- introspection ---------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def hits(self) -> int:
        """Cache hits served by this instance."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups this instance could not serve."""
        return self._misses

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._dir.glob(f"*{_ENTRY_SUFFIX}"))

    def path_for(self, key: str) -> Path:
        return self._dir / f"{key}{_ENTRY_SUFFIX}"

    # -- keying ----------------------------------------------------------

    def key_for(self, dataset: DiskDataset, *,
                normalizer: MinMaxNormalizer | None = None) -> str:
        """Content hash of ``dataset`` + the normalization parameters.

        ``normalizer`` names a pre-fitted scaler (its extrema enter the
        key); ``None`` means fit-on-self, the pipeline's default — the
        extrema are then implied by the content and need no extra bytes.
        """
        digest = hashlib.sha256()
        digest.update(f"repro-dataset-cache-v{CACHE_SCHEMA_VERSION}".encode())
        digest.update("\x1f".join(dataset.attributes).encode())
        for profile in dataset.profiles:
            digest.update(profile.serial.encode())
            digest.update(b"\x01" if profile.failed else b"\x00")
            digest.update(np.ascontiguousarray(profile.hours).tobytes())
            digest.update(np.ascontiguousarray(profile.matrix).tobytes())
        if normalizer is not None and normalizer.is_fitted:
            digest.update(np.ascontiguousarray(normalizer.minima).tobytes())
            digest.update(np.ascontiguousarray(normalizer.maxima).tobytes())
        else:
            digest.update(b"fit-on-self")
        return digest.hexdigest()

    # -- load / store ----------------------------------------------------

    def load(self, key: str) -> CachedDataset | None:
        """Return the entry under ``key``, or ``None`` on a miss.

        Unreadable entries (truncated writes, foreign files) count as
        misses and are removed so they cannot shadow a future store.
        """
        obs = self._observer
        path = self.path_for(key)
        with obs.span("cache-load", key=key[:12]):
            if not path.exists():
                self._misses += 1
                obs.count("cache_misses")
                return None
            try:
                entry = self._read_entry(path)
            except _ENTRY_READ_ERRORS as error:
                path.unlink(missing_ok=True)
                self._misses += 1
                obs.count("cache_misses")
                obs.event("cache entry unreadable, discarded",
                          key=key[:12], error=str(error))
                return None
        self._hits += 1
        obs.count("cache_hits")
        return entry

    def store(self, key: str, dataset: DiskDataset, *,
              extras: dict[str, np.ndarray] | None = None) -> Path:
        """Persist a normalized dataset (+ extras) under ``key``.

        The write goes through a temporary file and an atomic rename so
        a crashed run never leaves a half-written entry behind.
        """
        if not dataset.is_normalized:
            raise CacheError("only normalized datasets are cached")
        normalizer = dataset.normalizer
        if normalizer is None or not normalizer.is_fitted:
            raise CacheError("cached datasets must carry their normalizer")
        profiles = dataset.profiles
        payload: dict[str, np.ndarray] = {
            "schema_version": np.asarray([CACHE_SCHEMA_VERSION]),
            "attributes": np.asarray(dataset.attributes),
            "serials": np.asarray([p.serial for p in profiles]),
            "failed": np.asarray([p.failed for p in profiles], dtype=bool),
            "row_counts": np.asarray([len(p) for p in profiles],
                                     dtype=np.int64),
            "hours": np.concatenate([p.hours for p in profiles]),
            "matrix": np.vstack([p.matrix for p in profiles]),
            "norm_minima": normalizer.minima,
            "norm_maxima": normalizer.maxima,
        }
        for name, value in (extras or {}).items():
            array = np.asarray(value)
            if array.dtype == object:
                raise CacheError(f"extra {name!r} is not a plain array")
            payload[f"{_EXTRA_PREFIX}{name}"] = array
        path = self.path_for(key)
        with self._observer.span("cache-store", key=key[:12]):
            handle, temp_name = tempfile.mkstemp(
                dir=self._dir, suffix=_TEMP_SUFFIX
            )
            try:
                with os.fdopen(handle, "wb") as stream:
                    np.savez(stream, **payload)
                os.replace(temp_name, path)
            except BaseException:
                Path(temp_name).unlink(missing_ok=True)
                raise
        self._observer.event("cache entry stored", key=key[:12],
                             n_drives=len(profiles))
        return path

    # -- invalidation ----------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Drop the entry under ``key``; returns whether one existed."""
        path = self.path_for(key)
        if not path.exists():
            return False
        path.unlink()
        return True

    def clear(self) -> int:
        """Remove every entry; returns the number removed (stale temp
        files are swept too but not counted — they were never entries)."""
        removed = 0
        for path in self._dir.glob(f"*{_ENTRY_SUFFIX}"):
            path.unlink()
            removed += 1
        self._sweep_stale_temps()
        return removed

    # -- entry codec -----------------------------------------------------

    @staticmethod
    def _read_entry(path: Path) -> CachedDataset:
        with np.load(path, allow_pickle=False) as archive:
            version = int(archive["schema_version"][0])
            if version != CACHE_SCHEMA_VERSION:
                raise CacheError(
                    f"cache schema {version}, expected {CACHE_SCHEMA_VERSION}"
                )
            attributes = tuple(str(s) for s in archive["attributes"])
            serials = [str(s) for s in archive["serials"]]
            failed = archive["failed"]
            row_counts = archive["row_counts"]
            hours = archive["hours"]
            matrix = archive["matrix"]
            normalizer = MinMaxNormalizer.from_extrema(
                archive["norm_minima"], archive["norm_maxima"]
            )
            extras = {
                name[len(_EXTRA_PREFIX):]: archive[name]
                for name in archive.files
                if name.startswith(_EXTRA_PREFIX)
            }
        if int(row_counts.sum()) != matrix.shape[0]:
            raise CacheError("row counts do not cover the stored matrix")
        profiles: list[HealthProfile] = []
        offset = 0
        for serial, is_failed, rows in zip(serials, failed, row_counts):
            rows = int(rows)
            profiles.append(HealthProfile(
                serial=serial,
                hours=hours[offset:offset + rows].copy(),
                matrix=matrix[offset:offset + rows].copy(),
                failed=bool(is_failed),
                attributes=attributes,
            ))
            offset += rows
        dataset = DiskDataset(profiles, normalized=True,
                              normalizer=normalizer)
        return CachedDataset(dataset=dataset, extras=extras)
