"""Dataset containers and loaders.

The paper's pipeline consumes a labeled collection of per-drive SMART
profiles; :class:`DiskDataset` is that collection, with the dataset-wide
Eq. (1) normalization, constant-attribute filtering and CSV round-trips
the analysis needs.  A loader for the public Backblaze drive-stats CSV
format is included so the pipeline can run on real telemetry as well as
on the simulator's output.
"""

from repro.data.backblaze import (
    BACKBLAZE_COLUMN_MAP,
    load_backblaze_csv,
    save_backblaze_csv,
)
from repro.data.cache import CachedDataset, DatasetCache, default_cache_dir
from repro.data.dataset import DatasetSummary, DiskDataset
from repro.data.loader import load_csv, load_csv_resilient, save_csv
from repro.data.sanitize import (
    RawProfile,
    SanitizationResult,
    SanitizePolicy,
    sanitize_profiles,
)
from repro.data.splits import train_test_split
from repro.data.windows import truncate_to_policy

__all__ = [
    "BACKBLAZE_COLUMN_MAP",
    "load_backblaze_csv",
    "save_backblaze_csv",
    "CachedDataset",
    "DatasetCache",
    "default_cache_dir",
    "DatasetSummary",
    "DiskDataset",
    "load_csv",
    "load_csv_resilient",
    "save_csv",
    "RawProfile",
    "SanitizationResult",
    "SanitizePolicy",
    "sanitize_profiles",
    "train_test_split",
    "truncate_to_policy",
]
