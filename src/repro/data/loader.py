"""CSV round-trip for datasets.

The on-disk format is one flat CSV with a header row:

``serial,hour,failed,<attribute symbols...>``

Rows may appear in any order; they are grouped by serial and sorted by
hour on load.  This is the library's native interchange format — for the
public Backblaze drive-stats format see :mod:`repro.data.backblaze`.

Two ingest modes exist.  :func:`load_csv` is strict: any malformed row
raises :class:`~repro.errors.DatasetError` with its line number —
right for curated inputs where corruption means a bug.
:func:`load_csv_resilient` is the production path: malformed rows and
unusable drives are *quarantined* with typed reasons (through
:func:`repro.data.sanitize.sanitize_profiles`) and the load carries on,
returning both the clean dataset and the
:class:`~repro.data.sanitize.SanitizationResult` describing what was
excluded.
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path

import numpy as np

from repro.data.dataset import DiskDataset
from repro.data.sanitize import (
    RawProfile,
    SanitizationResult,
    SanitizePolicy,
    sanitize_profiles,
)
from repro.errors import DatasetError
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.smart.profile import HealthProfile
from repro.smart.quarantine import (
    QuarantinedDrive,
    QuarantinedSample,
    QuarantineReason,
)


def save_csv(dataset: DiskDataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` in the native CSV format."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["serial", "hour", "failed", *dataset.attributes])
        for profile in dataset.profiles:
            for hour, row in zip(profile.hours, profile.matrix):
                writer.writerow(
                    [profile.serial, int(hour), int(profile.failed),
                     *(repr(float(v)) for v in row)]
                )


def load_csv(path: str | Path,
             observer: PipelineObserver | None = None) -> DiskDataset:
    """Load a dataset written by :func:`save_csv`."""
    obs = resolve_observer(observer)
    path = Path(path)
    with obs.span("load-csv", path=str(path)):
        return _load_csv(path, obs)


def _load_csv(path: Path, obs: PipelineObserver) -> DiskDataset:
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        attributes = _read_header(reader, path)

        rows_by_serial: dict[str, list[tuple[int, bool, list[float]]]] = defaultdict(list)
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 3 + len(attributes):
                raise DatasetError(
                    f"{path}:{line_no}: expected {3 + len(attributes)} fields, "
                    f"got {len(row)}"
                )
            serial, hour_text, failed_text = row[0], row[1], row[2]
            try:
                hour = int(hour_text)
                failed = bool(int(failed_text))
                values = [float(v) for v in row[3:]]
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: {exc}") from exc
            rows_by_serial[serial].append((hour, failed, values))

    profiles = []
    for serial, rows in rows_by_serial.items():
        rows.sort(key=lambda item: item[0])
        failed_flags = {failed for _, failed, _ in rows}
        if len(failed_flags) != 1:
            raise DatasetError(
                f"{path}: serial {serial!r} has inconsistent failed flags"
            )
        hours = np.array([hour for hour, _, _ in rows], dtype=np.int64)
        matrix = np.array([values for _, _, values in rows], dtype=np.float64)
        profiles.append(
            HealthProfile(
                serial=serial,
                hours=hours,
                matrix=matrix,
                failed=failed_flags.pop(),
                attributes=attributes,
            )
        )
    obs.count("rows_loaded", sum(len(rows) for rows in rows_by_serial.values()))
    obs.gauge("profiles_loaded", len(profiles))
    obs.event("dataset loaded", path=str(path), profiles=len(profiles))
    return DiskDataset(profiles)


def _read_header(reader, path: Path) -> tuple[str, ...]:
    try:
        header = next(reader)
    except StopIteration:
        raise DatasetError(f"{path}: empty dataset file") from None
    if header[:3] != ["serial", "hour", "failed"]:
        raise DatasetError(
            f"{path}: expected header 'serial,hour,failed,...', "
            f"got {header[:3]}"
        )
    attributes = tuple(header[3:])
    if not attributes:
        raise DatasetError(f"{path}: no attribute columns")
    return attributes


def load_csv_resilient(path: str | Path, *,
                       policy: SanitizePolicy | None = None,
                       observer: PipelineObserver | None = None,
                       ) -> tuple[DiskDataset, SanitizationResult]:
    """Load a native CSV, quarantining bad rows instead of raising.

    The file must still open and carry a valid header (there is nothing
    to salvage otherwise); everything below that is best-effort.
    Malformed rows become :class:`QuarantinedSample` records with
    :attr:`QuarantineReason.MALFORMED_ROW`; drives whose rows disagree
    on the failed flag are quarantined whole; the surviving profiles run
    through :func:`repro.data.sanitize.sanitize_profiles`.  On a clean
    file the returned dataset is identical to :func:`load_csv`'s.
    """
    obs = resolve_observer(observer)
    path = Path(path)
    parse_samples: list[QuarantinedSample] = []
    parse_drives: list[QuarantinedDrive] = []
    with obs.span("load-csv", path=str(path), resilient=True):
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            attributes = _read_header(reader, path)
            rows_by_serial: dict[str, list[tuple[int, bool, list[float]]]] \
                = defaultdict(list)
            for row in reader:
                serial = row[0] if row else "?"
                parsed = _parse_row(row, len(attributes))
                if parsed is None:
                    parse_samples.append(QuarantinedSample(
                        serial, _best_effort_hour(row),
                        QuarantineReason.MALFORMED_ROW))
                    continue
                rows_by_serial[serial].append(parsed)

        raw_profiles: list[RawProfile] = []
        for serial, rows in rows_by_serial.items():
            failed_flags = {failed for _, failed, _ in rows}
            if len(failed_flags) != 1:
                parse_drives.append(QuarantinedDrive(
                    serial, QuarantineReason.INCONSISTENT_LABEL,
                    detail=f"{len(rows)} rows with mixed failed flags",
                ))
                continue
            raw_profiles.append(RawProfile(
                serial=serial,
                hours=np.array([hour for hour, _, _ in rows],
                               dtype=np.int64),
                matrix=np.array([values for _, _, values in rows],
                                dtype=np.float64),
                failed=failed_flags.pop(),
                attributes=attributes,
            ))

        result = sanitize_profiles(raw_profiles, policy=policy,
                                   observer=obs)
        result.samples = parse_samples + result.samples
        result.drives = parse_drives + result.drives
    obs.count("rows_loaded",
              sum(len(rows) for rows in rows_by_serial.values()))
    obs.gauge("profiles_loaded", len(result.dataset.profiles))
    obs.event("dataset loaded", path=str(path),
              profiles=len(result.dataset.profiles),
              quarantined_rows=len(parse_samples))
    return result.dataset, result


def _parse_row(row: list[str], n_attributes: int
               ) -> tuple[int, bool, list[float]] | None:
    """Parse one data row leniently; ``None`` marks a malformed row."""
    if len(row) != 3 + n_attributes:
        return None
    try:
        return int(row[1]), bool(int(row[2])), [float(v) for v in row[3:]]
    except ValueError:
        return None


def _best_effort_hour(row: list[str]) -> int:
    """Hour of a malformed row if its field parses, else ``-1``."""
    try:
        return int(row[1])
    except (IndexError, ValueError):
        return -1
