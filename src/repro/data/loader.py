"""CSV round-trip for datasets.

The on-disk format is one flat CSV with a header row:

``serial,hour,failed,<attribute symbols...>``

Rows may appear in any order; they are grouped by serial and sorted by
hour on load.  This is the library's native interchange format — for the
public Backblaze drive-stats format see :mod:`repro.data.backblaze`.
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path

import numpy as np

from repro.data.dataset import DiskDataset
from repro.errors import DatasetError
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.smart.profile import HealthProfile


def save_csv(dataset: DiskDataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` in the native CSV format."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["serial", "hour", "failed", *dataset.attributes])
        for profile in dataset.profiles:
            for hour, row in zip(profile.hours, profile.matrix):
                writer.writerow(
                    [profile.serial, int(hour), int(profile.failed),
                     *(repr(float(v)) for v in row)]
                )


def load_csv(path: str | Path,
             observer: PipelineObserver | None = None) -> DiskDataset:
    """Load a dataset written by :func:`save_csv`."""
    obs = resolve_observer(observer)
    path = Path(path)
    with obs.span("load-csv", path=str(path)):
        return _load_csv(path, obs)


def _load_csv(path: Path, obs: PipelineObserver) -> DiskDataset:
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path}: empty dataset file") from None
        if header[:3] != ["serial", "hour", "failed"]:
            raise DatasetError(
                f"{path}: expected header 'serial,hour,failed,...', got {header[:3]}"
            )
        attributes = tuple(header[3:])
        if not attributes:
            raise DatasetError(f"{path}: no attribute columns")

        rows_by_serial: dict[str, list[tuple[int, bool, list[float]]]] = defaultdict(list)
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 3 + len(attributes):
                raise DatasetError(
                    f"{path}:{line_no}: expected {3 + len(attributes)} fields, "
                    f"got {len(row)}"
                )
            serial, hour_text, failed_text = row[0], row[1], row[2]
            try:
                hour = int(hour_text)
                failed = bool(int(failed_text))
                values = [float(v) for v in row[3:]]
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: {exc}") from exc
            rows_by_serial[serial].append((hour, failed, values))

    profiles = []
    for serial, rows in rows_by_serial.items():
        rows.sort(key=lambda item: item[0])
        failed_flags = {failed for _, failed, _ in rows}
        if len(failed_flags) != 1:
            raise DatasetError(
                f"{path}: serial {serial!r} has inconsistent failed flags"
            )
        hours = np.array([hour for hour, _, _ in rows], dtype=np.int64)
        matrix = np.array([values for _, _, values in rows], dtype=np.float64)
        profiles.append(
            HealthProfile(
                serial=serial,
                hours=hours,
                matrix=matrix,
                failed=failed_flags.pop(),
                attributes=attributes,
            )
        )
    obs.count("rows_loaded", sum(len(rows) for rows in rows_by_serial.values()))
    obs.gauge("profiles_loaded", len(profiles))
    obs.event("dataset loaded", path=str(path), profiles=len(profiles))
    return DiskDataset(profiles)
