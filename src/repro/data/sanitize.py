"""Resilient ingest: repair what can be repaired, quarantine the rest.

Field telemetry arrives with gaps, duplicated and re-ordered uploads,
NaN blackouts and sensor glitches.  The strict constructors
(:class:`~repro.smart.profile.HealthProfile`,
:class:`~repro.data.dataset.DiskDataset`) reject such data outright —
correct for a library invariant, fatal for a production sweep where one
bad drive would abort thousands of good ones.

:func:`sanitize_profiles` is the boundary between those worlds.  It
accepts *lenient* :class:`RawProfile` records (or clean
``HealthProfile`` objects — the duck type is the same), then per drive:

1. re-sorts out-of-order samples (a repair, counted but not fatal);
2. drops samples repeating an already-seen timestamp;
3. drops samples holding NaN/Inf values;
4. drops samples failing a conservative fleet-wide outlier screen;
5. quarantines the whole drive when fewer than
   :attr:`SanitizePolicy.min_records` usable samples remain, or when the
   profile is empty, mislabeled or malformed.

Every exclusion carries a typed
:class:`~repro.smart.quarantine.QuarantineReason`; the result's
:meth:`~SanitizationResult.data_quality_section` feeds the report's
``data_quality`` section.  A clean dataset passes through bit-identical
(same arrays, same order), so enabling the resilient path costs nothing
when the data is good.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.data.dataset import DiskDataset
from repro.errors import DatasetError, QuarantineError
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.smart.profile import HealthProfile
from repro.smart.quarantine import (
    QuarantinedDrive,
    QuarantinedSample,
    QuarantineReason,
)


@runtime_checkable
class ProfileLike(Protocol):
    """What the sanitizer needs from an incoming drive profile."""

    serial: str
    hours: np.ndarray
    matrix: np.ndarray
    failed: bool
    attributes: tuple[str, ...]


@dataclass(slots=True)
class RawProfile:
    """One drive's telemetry with *no* validity guarantees.

    Unlike :class:`~repro.smart.profile.HealthProfile`, hours may be
    unsorted or duplicated, the matrix may hold NaN or absurd values,
    and the profile may even be empty.  This is what ingest actually
    receives in the field; only :func:`sanitize_profiles` turns it into
    the validated form.
    """

    serial: str
    hours: np.ndarray
    matrix: np.ndarray
    failed: bool
    attributes: tuple[str, ...]

    def __len__(self) -> int:
        return int(np.asarray(self.hours).shape[0])


@dataclass(frozen=True, slots=True)
class SanitizePolicy:
    """Tunables of the repair/quarantine pass.

    Parameters
    ----------
    min_records:
        Drives keeping fewer usable samples than this are quarantined
        whole (2 is the floor below which neither normalization nor
        windowing is meaningful).
    screen_outliers:
        Whether to run the fleet-wide outlier screen at all.
    outlier_min_deviation:
        A sample is only ever an outlier if it sits at least this far
        from its attribute's fleet median — an absolute backstop that
        keeps the screen silent on clean data whose spread is small.
    outlier_scale_factor:
        ...or further than this multiple of the attribute's robust
        spread (99th percentile of |x - median|), whichever is larger.
    """

    min_records: int = 2
    screen_outliers: bool = True
    outlier_min_deviation: float = 1.0e4
    outlier_scale_factor: float = 500.0


@dataclass(slots=True)
class SanitizationResult:
    """Everything one sanitization pass decided.

    ``dataset`` holds the surviving drives (input order preserved);
    ``drives`` / ``samples`` list the quarantined units with typed
    reasons; ``repairs`` counts in-place fixes that excluded nothing.
    """

    dataset: DiskDataset
    n_input_drives: int
    drives: list[QuarantinedDrive] = field(default_factory=list)
    samples: list[QuarantinedSample] = field(default_factory=list)
    repairs: dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when nothing was quarantined or repaired."""
        return not self.drives and not self.samples and not self.repairs

    @property
    def n_clean_drives(self) -> int:
        return len(self.dataset.profiles)

    def _reason_counts(self, records) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in records:
            counts[record.reason.name] = counts.get(record.reason.name, 0) + 1
        return dict(sorted(counts.items()))

    def data_quality_section(self) -> dict[str, object]:
        """Deterministic plain-dict summary for the report."""
        return {
            "n_input_drives": self.n_input_drives,
            "n_clean_drives": self.n_clean_drives,
            "drives_quarantined": self._reason_counts(self.drives),
            "samples_quarantined": self._reason_counts(self.samples),
            "quarantined_serials": sorted(
                {record.serial for record in self.drives}
            ),
            "repairs": dict(sorted(self.repairs.items())),
        }


def _outlier_limits(profiles: list[ProfileLike],
                    policy: SanitizePolicy) -> tuple[np.ndarray, np.ndarray]:
    """Per-attribute ``(median, max deviation)`` of the fleet's finite
    values; values beyond ``median ± limit`` are outliers."""
    stacked = np.vstack([np.asarray(p.matrix, dtype=np.float64)
                         for p in profiles if len(p.hours)])
    n_attributes = stacked.shape[1]
    medians = np.zeros(n_attributes)
    limits = np.full(n_attributes, np.inf)
    for column in range(n_attributes):
        values = stacked[:, column]
        values = values[np.isfinite(values)]
        if values.size == 0:
            continue
        medians[column] = np.median(values)
        spread = np.percentile(np.abs(values - medians[column]), 99)
        limits[column] = max(policy.outlier_min_deviation,
                             policy.outlier_scale_factor * float(spread))
    return medians, limits


def _sanitize_one(profile: ProfileLike, medians: np.ndarray | None,
                  limits: np.ndarray | None, policy: SanitizePolicy,
                  result: SanitizationResult) -> HealthProfile | None:
    """Repair one drive; returns its clean profile or ``None`` if
    quarantined (the verdicts land in ``result``)."""
    serial = profile.serial
    hours = np.asarray(profile.hours, dtype=np.int64)
    matrix = np.asarray(profile.matrix, dtype=np.float64)
    if hours.shape[0] == 0:
        result.drives.append(QuarantinedDrive(
            serial, QuarantineReason.EMPTY_PROFILE))
        return None

    if np.any(np.diff(hours) < 0):
        order = np.argsort(hours, kind="stable")
        hours, matrix = hours[order], matrix[order]
        result.repairs["reordered_profiles"] = \
            result.repairs.get("reordered_profiles", 0) + 1

    keep = np.ones(hours.shape[0], dtype=bool)
    duplicate = np.zeros(hours.shape[0], dtype=bool)
    duplicate[1:] = hours[1:] == hours[:-1]
    non_finite = ~np.isfinite(matrix).all(axis=1)
    if policy.screen_outliers and medians is not None and limits is not None:
        with np.errstate(invalid="ignore"):
            outlier = (np.abs(matrix - medians) > limits).any(axis=1)
        outlier &= ~non_finite
    else:
        outlier = np.zeros(hours.shape[0], dtype=bool)

    for mask, reason in ((duplicate, QuarantineReason.DUPLICATE_TIMESTAMP),
                         (non_finite, QuarantineReason.NON_FINITE_VALUES),
                         (outlier, QuarantineReason.OUTLIER_VALUE)):
        for index in np.flatnonzero(mask & keep):
            result.samples.append(QuarantinedSample(
                serial, int(hours[index]), reason))
        keep &= ~mask

    kept = int(keep.sum())
    if kept < policy.min_records:
        result.drives.append(QuarantinedDrive(
            serial, QuarantineReason.TOO_FEW_RECORDS,
            detail=f"{kept} usable of {hours.shape[0]} samples",
        ))
        return None
    if kept < hours.shape[0]:
        hours, matrix = hours[keep], matrix[keep]
    try:
        return HealthProfile(
            serial=serial,
            hours=hours,
            matrix=np.ascontiguousarray(matrix),
            failed=bool(profile.failed),
            attributes=tuple(profile.attributes),
        )
    except DatasetError as error:
        # Safety net: anything the strict constructor still rejects is a
        # malformed profile, not a crash.
        result.drives.append(QuarantinedDrive(
            serial, QuarantineReason.MALFORMED_PROFILE, detail=str(error)))
        return None


def sanitize_profiles(profiles: Iterable[ProfileLike], *,
                      policy: SanitizePolicy | None = None,
                      normalized: bool = False,
                      observer: PipelineObserver | None = None,
                      ) -> SanitizationResult:
    """Repair/quarantine ``profiles`` into a usable dataset.

    Raises :class:`~repro.errors.QuarantineError` only when *every*
    profile is quarantined — partial loss is reported, not fatal.
    A fully clean input passes through with bit-identical arrays.
    """
    policy = policy if policy is not None else SanitizePolicy()
    obs = resolve_observer(observer)
    incoming = list(profiles)
    result = SanitizationResult(dataset=None,  # type: ignore[arg-type]
                                n_input_drives=len(incoming))
    with obs.span("sanitize", n_drives=len(incoming)):
        expected_attributes = (tuple(incoming[0].attributes)
                               if incoming else ())
        seen_serials: set[str] = set()
        usable: list[ProfileLike] = []
        for profile in incoming:
            if tuple(profile.attributes) != expected_attributes:
                result.drives.append(QuarantinedDrive(
                    profile.serial, QuarantineReason.MISMATCHED_ATTRIBUTES))
            elif profile.serial in seen_serials:
                result.drives.append(QuarantinedDrive(
                    profile.serial, QuarantineReason.DUPLICATE_SERIAL))
            else:
                seen_serials.add(profile.serial)
                usable.append(profile)

        medians = limits = None
        if policy.screen_outliers and any(len(np.asarray(p.hours))
                                          for p in usable):
            medians, limits = _outlier_limits(usable, policy)

        clean: list[HealthProfile] = []
        for profile in usable:
            sanitized = _sanitize_one(profile, medians, limits, policy,
                                      result)
            if sanitized is not None:
                clean.append(sanitized)

        if not clean:
            raise QuarantineError(
                "sanitization quarantined every drive "
                f"({len(incoming)} in, 0 usable); the telemetry is "
                "unusable end to end"
            )
        result.dataset = DiskDataset(clean, normalized=normalized)

    obs.count("drives_quarantined", len(result.drives))
    obs.count("samples_quarantined", len(result.samples))
    for repair, count in sorted(result.repairs.items()):
        obs.count(f"repairs_{repair}", count)
    if not result.clean:
        obs.event("sanitization excluded data",
                  drives_quarantined=len(result.drives),
                  samples_quarantined=len(result.samples),
                  repairs=sum(result.repairs.values()))
    return result
