"""The labeled SMART dataset the characterization pipeline consumes.

A :class:`DiskDataset` owns the health profiles of every drive, split by
outcome: drives replaced due to failures are *failed*, the rest *good*.
It provides the dataset-wide operations of the paper's Section III —
Eq. (1) min-max normalization with extrema taken over *all* records, and
the filtering of attributes that are constant across the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.smart.attributes import CHARACTERIZATION_ATTRIBUTES
from repro.smart.normalization import MinMaxNormalizer
from repro.smart.profile import HealthProfile


@dataclass(frozen=True, slots=True)
class DatasetSummary:
    """Headline statistics of a dataset (paper Section III numbers)."""

    n_drives: int
    n_failed: int
    n_good: int
    failed_samples: int
    good_samples: int
    mean_failed_profile_hours: float

    @property
    def failure_rate(self) -> float:
        return self.n_failed / self.n_drives if self.n_drives else 0.0


class DiskDataset:
    """Collection of per-drive health profiles with failure labels.

    Parameters
    ----------
    profiles:
        All drive profiles (good and failed, any order).  Serial numbers
        must be unique and every profile must share the same attribute
        columns.
    normalized:
        Whether the profile matrices already hold Eq. (1)-normalized
        values.  Raw datasets (from the simulator or a loader) start
        ``False``; :meth:`normalize` produces the normalized view.
    """

    def __init__(self, profiles: list[HealthProfile], *,
                 normalized: bool = False,
                 normalizer: MinMaxNormalizer | None = None) -> None:
        if not profiles:
            raise DatasetError("a dataset needs at least one profile")
        attributes = profiles[0].attributes
        serials: set[str] = set()
        for profile in profiles:
            if profile.attributes != attributes:
                raise DatasetError(
                    f"profile {profile.serial!r} has mismatched attributes"
                )
            if profile.serial in serials:
                raise DatasetError(f"duplicate serial {profile.serial!r}")
            serials.add(profile.serial)
        self._profiles = list(profiles)
        self._by_serial = {p.serial: p for p in self._profiles}
        self._attributes = attributes
        self._normalized = normalized
        self._normalizer = normalizer

    # -- basic access ---------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attributes

    @property
    def profiles(self) -> list[HealthProfile]:
        return list(self._profiles)

    @property
    def is_normalized(self) -> bool:
        return self._normalized

    @property
    def normalizer(self) -> MinMaxNormalizer | None:
        """The scaler used to produce this dataset, when normalized."""
        return self._normalizer

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, serial: str) -> bool:
        return serial in self._by_serial

    def get(self, serial: str) -> HealthProfile:
        try:
            return self._by_serial[serial]
        except KeyError:
            raise DatasetError(f"no profile with serial {serial!r}") from None

    @property
    def failed_profiles(self) -> list[HealthProfile]:
        return [p for p in self._profiles if p.failed]

    @property
    def good_profiles(self) -> list[HealthProfile]:
        return [p for p in self._profiles if not p.failed]

    def summary(self) -> DatasetSummary:
        failed = self.failed_profiles
        good = self.good_profiles
        failed_samples = sum(len(p) for p in failed)
        mean_hours = (
            float(np.mean([p.duration_hours for p in failed])) if failed else 0.0
        )
        return DatasetSummary(
            n_drives=len(self._profiles),
            n_failed=len(failed),
            n_good=len(good),
            failed_samples=failed_samples,
            good_samples=sum(len(p) for p in good),
            mean_failed_profile_hours=mean_hours,
        )

    # -- matrix views -----------------------------------------------------

    def stacked_records(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(matrix, failed_mask)`` of every record in the dataset.

        Rows are grouped by drive in insertion order; ``failed_mask`` marks
        rows belonging to failed drives.
        """
        matrices = [p.matrix for p in self._profiles]
        masks = [np.full(len(p), p.failed, dtype=bool) for p in self._profiles]
        return np.vstack(matrices), np.concatenate(masks)

    def failure_records(self) -> tuple[np.ndarray, list[str]]:
        """Return the last recorded health state of each failed drive.

        The row order matches the returned serial list.
        """
        failed = self.failed_profiles
        if not failed:
            raise DatasetError("dataset has no failed drives")
        matrix = np.vstack([p.failure_record() for p in failed])
        return matrix, [p.serial for p in failed]

    def column_index(self, symbol: str) -> int:
        try:
            return self._attributes.index(symbol)
        except ValueError:
            raise DatasetError(f"dataset has no attribute {symbol!r}") from None

    # -- dataset-wide transformations ------------------------------------

    def constant_attributes(self) -> tuple[str, ...]:
        """Symbols whose value never changes across the whole dataset."""
        matrix, _ = self.stacked_records()
        constant = matrix.min(axis=0) == matrix.max(axis=0)
        return tuple(
            symbol for symbol, is_const in zip(self._attributes, constant)
            if is_const
        )

    def drop_attributes(self, symbols: tuple[str, ...] | list[str]) -> "DiskDataset":
        """Return a dataset without the given attribute columns.

        Mirrors the paper's filtering of uninformative attributes before
        the Table I selection.
        """
        drop = set(symbols)
        unknown = drop - set(self._attributes)
        if unknown:
            raise DatasetError(f"cannot drop unknown attributes: {sorted(unknown)}")
        keep = [i for i, s in enumerate(self._attributes) if s not in drop]
        if not keep:
            raise DatasetError("cannot drop every attribute")
        kept_symbols = tuple(self._attributes[i] for i in keep)
        profiles = [
            HealthProfile(
                serial=p.serial,
                hours=p.hours.copy(),
                matrix=p.matrix[:, keep].copy(),
                failed=p.failed,
                attributes=kept_symbols,
            )
            for p in self._profiles
        ]
        return DiskDataset(profiles, normalized=self._normalized)

    def subset(self, serials: list[str] | tuple[str, ...]) -> "DiskDataset":
        """Return a dataset containing exactly the named drives."""
        if not serials:
            raise DatasetError("subset needs at least one serial")
        return DiskDataset(
            [self.get(serial) for serial in serials],
            normalized=self._normalized,
            normalizer=self._normalizer,
        )

    def sample(self, *, n_good: int | None = None,
               n_failed: int | None = None,
               rng: np.random.Generator | None = None) -> "DiskDataset":
        """Return a random sub-fleet with the requested population sizes.

        ``None`` keeps the full population on that side.  Useful for
        scaling experiments down without re-simulating.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        chosen: list[HealthProfile] = []
        for pool, count in ((self.failed_profiles, n_failed),
                            (self.good_profiles, n_good)):
            if count is None:
                chosen.extend(pool)
                continue
            if not 0 <= count <= len(pool):
                raise DatasetError(
                    f"cannot sample {count} from {len(pool)} drives"
                )
            indices = rng.choice(len(pool), size=count, replace=False)
            chosen.extend(pool[i] for i in sorted(indices))
        if not chosen:
            raise DatasetError("sampled dataset would be empty")
        return DiskDataset(chosen, normalized=self._normalized,
                           normalizer=self._normalizer)

    def merge(self, other: "DiskDataset") -> "DiskDataset":
        """Combine two datasets (serials must not collide).

        Both sides must be in the same normalization state; merging a
        normalized dataset with a raw one would silently mix scales.
        """
        if self._normalized != other.is_normalized:
            raise DatasetError(
                "cannot merge datasets in different normalization states"
            )
        return DiskDataset(
            self.profiles + other.profiles,
            normalized=self._normalized,
        )

    def fit_normalizer(self) -> MinMaxNormalizer:
        """Fit the Eq. (1) scaler on every record of the dataset."""
        matrix, _ = self.stacked_records()
        return MinMaxNormalizer().fit(matrix)

    def normalize(self, normalizer: MinMaxNormalizer | None = None) -> "DiskDataset":
        """Return the dataset rescaled to ``[-1, 1]`` per attribute.

        A pre-fitted ``normalizer`` may be supplied (e.g. to scale a test
        split with training extrema); by default the scaler is fitted on
        this dataset, exactly as the paper fits Eq. (1) on the full
        collection.
        """
        if self._normalized:
            raise DatasetError("dataset is already normalized")
        scaler = normalizer if normalizer is not None else self.fit_normalizer()
        profiles = [
            p.with_matrix(scaler.transform(p.matrix)) for p in self._profiles
        ]
        return DiskDataset(profiles, normalized=True, normalizer=scaler)


def make_dataset(profiles: list[HealthProfile]) -> DiskDataset:
    """Convenience constructor used by the simulator and loaders."""
    return DiskDataset(profiles, normalized=False)


# Re-exported default attribute ordering, used by loaders when writing
# column headers.
DEFAULT_ATTRIBUTES: tuple[str, ...] = CHARACTERIZATION_ATTRIBUTES
