"""Observation-window policy of the studied data center.

Failed drives keep at most 20 days (480 hourly samples) ending at the
failure record; good drives keep at most 7 days (168 samples).  The
simulator generates profiles already under this policy; loaders for
external telemetry apply :func:`truncate_to_policy` after ingestion.
"""

from __future__ import annotations

from repro.smart.profile import (
    FAILED_OBSERVATION_HOURS,
    GOOD_OBSERVATION_HOURS,
    HealthProfile,
)


def truncate_to_policy(profile: HealthProfile,
                       failed_hours: int = FAILED_OBSERVATION_HOURS,
                       good_hours: int = GOOD_OBSERVATION_HOURS) -> HealthProfile:
    """Truncate ``profile`` to the collection policy.

    Failed profiles keep their final ``failed_hours`` samples (the failure
    record is always retained); good profiles keep their final
    ``good_hours`` samples.
    """
    limit = failed_hours if profile.failed else good_hours
    if len(profile) <= limit:
        return profile
    return profile.last(limit)
