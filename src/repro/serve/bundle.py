"""Versioned model artifacts: everything a scorer needs, in one file.

The characterization pipeline ends with models that live only inside the
Python process that trained them — the fitted per-group regression
trees, the Eq. (1) normalization extrema, the failure-group taxonomy.
Deploying the paper's monitor as a service means those models must
outlive the process: trained once, shipped to scoring hosts, loaded in
milliseconds, and *refused* when stale or corrupt.

:class:`ModelBundle` is that artifact.  It captures:

* the Table I attribute ordering the models were trained on;
* the fitted :class:`~repro.smart.normalization.MinMaxNormalizer`
  extrema (exact float64 values — a restored scaler transforms
  byte-identically);
* the failure-group taxonomy from categorization: per group the failure
  type, paper group number, population, centroid drive and the k-means
  centroid vector in failure-record feature space;
* the canonical signature parameters per group (polynomial order and
  prediction window ``d``);
* the fitted :class:`~repro.ml.tree.RegressionTree` per failure group
  (exact round trip via ``to_dict``/``from_dict``);
* the monitor thresholds (WATCH / CRITICAL stages, ring-buffer hours).

:func:`save_bundle` writes the bundle as a single JSON file carrying a
schema version and a sha256 content hash; :func:`load_bundle` refuses
truncated files, foreign JSON, stale schema versions and hash mismatches
with typed :class:`~repro.errors.BundleError`\\ s — a loaded bundle
either reproduces the training-time models bit for bit or does not load
at all.  Floats are serialized via ``repr`` (Python's ``json`` default),
which round-trips every float64 exactly; the artifact deliberately does
*not* use the report serializer's 12-significant-digit normalization,
because a rounded tree threshold could route a sample down a different
branch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.categorize import CategorizationResult
from repro.core.monitor import (
    DEFAULT_CRITICAL_THRESHOLD,
    DEFAULT_HISTORY_HOURS,
    DEFAULT_WATCH_THRESHOLD,
)
from repro.core.prediction import DegradationPredictor
from repro.core.signature_models import (
    CANONICAL_ORDER_BY_TYPE,
    PREDICTION_WINDOW_BY_TYPE,
)
from repro.core.taxonomy import FailureType
from repro.core.pipeline import CharacterizationReport
from repro.errors import BundleError, ModelError, ServeError
from repro.ioutil import atomic_write_text
from repro.ml.tree import RegressionTree
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.smart.normalization import MinMaxNormalizer

#: Version of the on-disk bundle layout; bump on breaking changes.  A
#: bundle written under any other version is *stale* and refuses to
#: load — scorers never guess at old layouts.
BUNDLE_SCHEMA_VERSION = 1

#: Key carrying the sha256 content hash inside the artifact.  The hash
#: covers the canonical serialization of every *other* key.
_HASH_KEY = "content_sha256"


@dataclass(frozen=True, slots=True)
class GroupArtifact:
    """Everything the bundle records about one failure group."""

    failure_type: FailureType
    paper_group_number: int
    n_records: int
    population_fraction: float
    centroid_serial: str
    centroid: tuple[float, ...]
    signature_order: int
    prediction_window: int


@dataclass(frozen=True, slots=True)
class ModelBundle:
    """A self-contained, versioned scoring artifact.

    Instances are immutable; construct them with
    :func:`build_bundle` (from a pipeline report) or :func:`load_bundle`
    (from disk).  ``trees`` maps each failure type to a fitted
    regression tree; ``groups`` carries the taxonomy and signature
    parameters; ``minima``/``maxima`` are the Eq. (1) extrema.
    """

    attributes: tuple[str, ...]
    minima: tuple[float, ...]
    maxima: tuple[float, ...]
    groups: dict[FailureType, GroupArtifact]
    trees: dict[FailureType, RegressionTree]
    watch_threshold: float = DEFAULT_WATCH_THRESHOLD
    critical_threshold: float = DEFAULT_CRITICAL_THRESHOLD
    history_hours: int = DEFAULT_HISTORY_HOURS
    trained_on: dict[str, int] = field(default_factory=dict)
    generation: int = 0
    parent_sha256: str = ""

    def __post_init__(self) -> None:
        if self.generation < 0:
            raise BundleError(
                f"generation must be >= 0, got {self.generation}")
        if len(self.minima) != len(self.attributes) \
                or len(self.maxima) != len(self.attributes):
            raise BundleError(
                f"extrema cover {len(self.minima)}/{len(self.maxima)} "
                f"columns for {len(self.attributes)} attributes"
            )
        missing = [t.name for t in FailureType if t not in self.trees]
        if missing:
            raise BundleError(
                f"bundle has no tree for: {', '.join(missing)}"
            )
        if self.critical_threshold >= self.watch_threshold:
            raise BundleError(
                "critical_threshold must sit below watch_threshold"
            )
        if self.history_hours < 1:
            raise BundleError("history_hours must be positive")

    @property
    def n_attributes(self) -> int:
        """Width of the feature space the models consume."""
        return len(self.attributes)

    def normalizer(self) -> MinMaxNormalizer:
        """Reconstruct the exact Eq. (1) scaler the models trained on."""
        return MinMaxNormalizer.from_extrema(
            np.asarray(self.minima, dtype=np.float64),
            np.asarray(self.maxima, dtype=np.float64),
        )

    def predictor(self) -> DegradationPredictor:
        """Reconstruct a predictor holding the bundled fitted trees."""
        predictor = DegradationPredictor()
        predictor.trees_ = dict(self.trees)
        return predictor

    def to_payload(self) -> dict[str, Any]:
        """Flatten the bundle into JSON-clean plain types (no hash)."""
        groups = {
            failure_type.name: {
                "paper_group_number": artifact.paper_group_number,
                "n_records": artifact.n_records,
                "population_fraction": artifact.population_fraction,
                "centroid_serial": artifact.centroid_serial,
                "centroid": list(artifact.centroid),
                "signature_order": artifact.signature_order,
                "prediction_window": artifact.prediction_window,
            }
            for failure_type, artifact in sorted(
                self.groups.items(), key=lambda item: item[0].name
            )
        }
        trees = {
            failure_type.name: tree.to_dict()
            for failure_type, tree in sorted(
                self.trees.items(), key=lambda item: item[0].name
            )
        }
        return {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "attributes": list(self.attributes),
            "normalization": {
                "minima": list(self.minima),
                "maxima": list(self.maxima),
            },
            "groups": groups,
            "trees": trees,
            "monitor": {
                "watch_threshold": self.watch_threshold,
                "critical_threshold": self.critical_threshold,
                "history_hours": self.history_hours,
            },
            "trained_on": dict(self.trained_on),
            "lineage": {
                "generation": self.generation,
                "parent_sha256": self.parent_sha256,
            },
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ModelBundle":
        """Rebuild a bundle from a :meth:`to_payload` mapping.

        Structural damage surfaces as :class:`BundleError`; the caller
        (:func:`load_bundle`) has already checked schema version and
        content hash.
        """
        try:
            attributes = tuple(str(s) for s in payload["attributes"])
            normalization = payload["normalization"]
            minima = tuple(float(v) for v in normalization["minima"])
            maxima = tuple(float(v) for v in normalization["maxima"])
            monitor = payload["monitor"]
            groups: dict[FailureType, GroupArtifact] = {}
            for name, group in payload["groups"].items():
                failure_type = FailureType[name]
                groups[failure_type] = GroupArtifact(
                    failure_type=failure_type,
                    paper_group_number=int(group["paper_group_number"]),
                    n_records=int(group["n_records"]),
                    population_fraction=float(group["population_fraction"]),
                    centroid_serial=str(group["centroid_serial"]),
                    centroid=tuple(float(v) for v in group["centroid"]),
                    signature_order=int(group["signature_order"]),
                    prediction_window=int(group["prediction_window"]),
                )
            trees = {
                FailureType[name]: RegressionTree.from_dict(tree_payload)
                for name, tree_payload in payload["trees"].items()
            }
            return cls(
                attributes=attributes,
                minima=minima,
                maxima=maxima,
                groups=groups,
                trees=trees,
                watch_threshold=float(monitor["watch_threshold"]),
                critical_threshold=float(monitor["critical_threshold"]),
                history_hours=int(monitor["history_hours"]),
                trained_on={str(k): int(v)
                            for k, v in payload.get("trained_on", {}).items()},
                generation=int(
                    payload.get("lineage", {}).get("generation", 0)),
                parent_sha256=str(
                    payload.get("lineage", {}).get("parent_sha256", "")),
            )
        except BundleError:
            raise
        except (KeyError, TypeError, ValueError, ModelError) as error:
            raise BundleError(f"malformed bundle payload: {error}") from error


def _bundle_json_dumps(payload: dict[str, Any]) -> str:
    """Deterministic, *exact* JSON for bundle artifacts.

    Sorted keys and fixed separators make equal bundles byte-equal (so
    the content hash is reproducible); floats go through ``repr`` and
    round-trip exactly — see the module docstring for why the report
    serializer's rounding is unacceptable here.
    """
    try:
        return json.dumps(payload, sort_keys=True, indent=1,
                          allow_nan=False) + "\n"
    except (TypeError, ValueError) as error:
        raise BundleError(f"bundle payload not serializable: {error}") \
            from error


def content_hash(payload: dict[str, Any]) -> str:
    """sha256 over the canonical serialization of ``payload``.

    The hash is computed with the :data:`_HASH_KEY` entry removed, so
    a stored artifact hashes to the value it carries.
    """
    hashable = {k: v for k, v in payload.items() if k != _HASH_KEY}
    digest = hashlib.sha256(
        _bundle_json_dumps(hashable).encode("utf-8")
    )
    return digest.hexdigest()


def stamp_lineage(bundle: ModelBundle, parent: ModelBundle) -> ModelBundle:
    """Record ``parent`` in ``bundle``'s lineage metadata.

    Returns a copy whose ``generation`` is the parent's plus one and
    whose ``parent_sha256`` is the parent's content hash — the
    promotion plane stamps every challenger this way before it can be
    swapped in, so an artifact always names the champion it replaced.
    """
    return replace(bundle,
                   generation=parent.generation + 1,
                   parent_sha256=content_hash(parent.to_payload()))


def bundle_from_document(payload: Any, *,
                         source: str = "<document>") -> ModelBundle:
    """Verify and decode one hashed bundle document (an in-memory load).

    The same gates :func:`load_bundle` applies after reading a file:
    the payload must be a JSON object, carry the current
    :data:`BUNDLE_SCHEMA_VERSION`, hash to its own stored
    :data:`content hash <_HASH_KEY>`, and decode into a structurally
    valid :class:`ModelBundle`.  The daemon's ``POST /promote`` route
    runs challenger artifacts through this before swapping them in —
    a bundle shipped over the wire gets no weaker checks than one read
    from disk.
    """
    if not isinstance(payload, dict):
        raise BundleError(f"{source}: expected a JSON object")
    version = payload.get("schema_version")
    if version != BUNDLE_SCHEMA_VERSION:
        raise BundleError(
            f"{source}: stale bundle (schema version {version!r}, "
            f"this library reads {BUNDLE_SCHEMA_VERSION})"
        )
    stored_hash = payload.get(_HASH_KEY)
    if not isinstance(stored_hash, str):
        raise BundleError(f"{source}: bundle carries no content hash")
    actual = content_hash(payload)
    if actual != stored_hash:
        raise BundleError(
            f"{source}: content hash mismatch (stored "
            f"{stored_hash[:12]}…, computed {actual[:12]}…) — the "
            "artifact was corrupted or edited after save"
        )
    return ModelBundle.from_payload(payload)


def build_bundle(report: CharacterizationReport,
                 predictor: DegradationPredictor | None = None, *,
                 normalizer: MinMaxNormalizer | None = None,
                 watch_threshold: float = DEFAULT_WATCH_THRESHOLD,
                 critical_threshold: float = DEFAULT_CRITICAL_THRESHOLD,
                 history_hours: int = DEFAULT_HISTORY_HOURS,
                 seed: int | None = None) -> ModelBundle:
    """Assemble a :class:`ModelBundle` from a pipeline report.

    Parameters
    ----------
    report:
        A :class:`~repro.core.pipeline.CharacterizationReport` (its
        ``dataset`` must carry the fitted normalizer, as every report
        from a raw input does).
    predictor:
        A trained :class:`DegradationPredictor`.  ``None`` trains one
        here on the report's dataset and categorization — the same
        protocol the pipeline's prediction stage runs.
    normalizer:
        Overrides the report dataset's scaler (required only when the
        pipeline consumed an already-normalized dataset, which carries
        no scaler).
    watch_threshold / critical_threshold / history_hours:
        Monitor configuration frozen into the artifact.
    seed:
        Seed for the predictor trained here when ``predictor`` is
        ``None`` (default: the predictor's own default).
    """
    if normalizer is None:
        normalizer = report.dataset.normalizer
    if normalizer is None or not normalizer.is_fitted:
        raise ServeError(
            "report dataset carries no fitted normalizer; pass one "
            "explicitly (normalized inputs drop the scaler)"
        )
    if predictor is None:
        kwargs = {} if seed is None else {"seed": seed}
        predictor = DegradationPredictor(**kwargs)
    missing = [t for t in FailureType if t not in predictor.trees_]
    if missing:
        predictor.evaluate_all(report.dataset, report.categorization)

    summary = report.dataset.summary()
    return ModelBundle(
        attributes=tuple(report.dataset.attributes),
        minima=tuple(float(v) for v in normalizer.minima),
        maxima=tuple(float(v) for v in normalizer.maxima),
        groups=_group_artifacts(report.categorization),
        trees={failure_type: predictor.tree_for(failure_type)
               for failure_type in FailureType},
        watch_threshold=watch_threshold,
        critical_threshold=critical_threshold,
        history_hours=history_hours,
        trained_on={
            "n_drives": summary.n_drives,
            "n_failed": summary.n_failed,
            "n_good": summary.n_good,
        },
    )


def _group_artifacts(categorization: CategorizationResult,
                     ) -> dict[FailureType, GroupArtifact]:
    """Taxonomy + k-means centroid vectors, one artifact per group."""
    artifacts: dict[FailureType, GroupArtifact] = {}
    for cluster_id, group in categorization.groups.items():
        member_mask = categorization.labels == cluster_id
        centroid = categorization.records.features[member_mask].mean(axis=0)
        failure_type = group.failure_type
        artifacts[failure_type] = GroupArtifact(
            failure_type=failure_type,
            paper_group_number=group.paper_group_number,
            n_records=group.n_records,
            population_fraction=group.population_fraction,
            centroid_serial=categorization.centroid_serials[cluster_id],
            centroid=tuple(float(v) for v in centroid),
            signature_order=CANONICAL_ORDER_BY_TYPE[failure_type],
            prediction_window=PREDICTION_WINDOW_BY_TYPE[failure_type],
        )
    return artifacts


def save_bundle(bundle: ModelBundle, path: str | Path, *,
                observer: PipelineObserver | None = None) -> Path:
    """Write ``bundle`` to ``path`` as one hashed, versioned JSON file.

    The write goes through a same-directory temp file, an fsync and an
    atomic rename, so a crash mid-save — even power loss — can never
    leave a half-written artifact under the final name.
    """
    obs = resolve_observer(observer)
    path = Path(path)
    with obs.span("bundle-save", path=str(path)):
        payload = bundle.to_payload()
        payload[_HASH_KEY] = content_hash(payload)
        text = _bundle_json_dumps(payload)
        try:
            atomic_write_text(path, text)
        except OSError as error:
            raise BundleError(
                f"cannot write bundle to {path}: {error}") from error
    obs.count("bundles_saved")
    return path


def load_bundle(path: str | Path, *,
                observer: PipelineObserver | None = None) -> ModelBundle:
    """Load and verify a bundle written by :func:`save_bundle`.

    Four gates, each a typed :class:`BundleError`: the file must read
    and parse as a JSON object (corruption / truncation), carry the
    current :data:`BUNDLE_SCHEMA_VERSION` (staleness), hash to its own
    :data:`content hash <_HASH_KEY>` (bit rot / tampering), and decode
    into a structurally valid :class:`ModelBundle`.  A bundle that
    passes all four scores exactly as the models scored at training
    time — garbage never flows downstream.
    """
    obs = resolve_observer(observer)
    path = Path(path)
    with obs.span("bundle-load", path=str(path)):
        try:
            text = path.read_text()
        except OSError as error:
            raise BundleError(f"cannot read bundle {path}: {error}") \
                from error
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise BundleError(
                f"{path}: corrupt bundle (not valid JSON: {error})"
            ) from error
        bundle = bundle_from_document(payload, source=str(path))
    obs.count("bundles_loaded")
    return bundle
