"""Pluggable alert delivery for the serving daemon.

When the daemon scores a sample above HEALTHY it pushes the verdict to
every configured :class:`AlertSink`.  Three shapes cover the common
operational setups:

:class:`JsonlAlertSink`
    Appends one canonical JSON line per alert to a file — the durable
    default; ``tail -f`` is the minimum viable pager.
:class:`WebhookAlertSink`
    POSTs each alert as JSON to an HTTP endpoint (stdlib ``urllib``
    only) — for chat-ops bridges and incident routers.
:class:`CallbackAlertSink`
    Hands each alert to an in-process callable — for embedding the
    daemon as a library.

Sinks receive only alerting verdicts, after scoring is complete, so a
slow or failing sink can never change a verdict or block admission.
Delivery failures raise :class:`~repro.errors.SinkError` from
:meth:`AlertSink.emit`; the daemon catches these, counts them under
``alert_sink_errors``, and keeps serving.

:func:`parse_sink_spec` turns the CLI's ``--alert-sink`` strings
(``jsonl:PATH``, ``webhook:URL``) into sink instances.
"""

from __future__ import annotations

import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Callable

from repro.errors import SinkError
from repro.serve.scorer import MonitorVerdict

#: Webhook delivery timeout (seconds) unless the caller overrides it.
DEFAULT_WEBHOOK_TIMEOUT_S = 5.0


class AlertSink:
    """Interface every alert sink implements.

    ``emit`` delivers one alerting verdict; ``close`` releases any
    resources (idempotent).  Subclasses raise
    :class:`~repro.errors.SinkError` on delivery failure so the daemon
    can count and survive it.
    """

    #: Short name used in ``/status`` payloads and error messages.
    kind = "null"

    def emit(self, verdict: MonitorVerdict) -> None:
        """Deliver one alerting verdict (no-op in the base class)."""

    def close(self) -> None:
        """Release sink resources (no-op in the base class)."""

    def describe(self) -> str:
        """One-line, human-readable identity for status payloads."""
        return self.kind


class JsonlAlertSink(AlertSink):
    """Appends alerts as canonical JSON lines to a file.

    The file is opened lazily on the first alert and flushed after
    every line, so a crashed daemon leaves no half-written alert and an
    operator's ``tail -f`` sees alerts immediately.
    """

    kind = "jsonl"

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._file: Any = None

    @property
    def path(self) -> Path:
        """Destination file."""
        return self._path

    def emit(self, verdict: MonitorVerdict) -> None:
        """Append one canonical JSON line (create the file on demand)."""
        try:
            if self._file is None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                self._file = self._path.open("a", encoding="utf-8")
            self._file.write(verdict.to_json_line() + "\n")
            self._file.flush()
        except OSError as error:
            raise SinkError(
                f"jsonl sink cannot write {self._path}: {error}") from error

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def describe(self) -> str:
        """``jsonl:<path>``."""
        return f"jsonl:{self._path}"


class WebhookAlertSink(AlertSink):
    """POSTs each alert as a JSON document to an HTTP endpoint."""

    kind = "webhook"

    def __init__(self, url: str, *,
                 timeout_s: float = DEFAULT_WEBHOOK_TIMEOUT_S) -> None:
        if not url.startswith(("http://", "https://")):
            raise SinkError(f"webhook sink needs an http(s) URL, got {url!r}")
        self._url = url
        self._timeout_s = timeout_s

    @property
    def url(self) -> str:
        """Destination endpoint."""
        return self._url

    def emit(self, verdict: MonitorVerdict) -> None:
        """POST the verdict; non-2xx or transport failure is SinkError."""
        body = (verdict.to_json_line() + "\n").encode("utf-8")
        request = urllib.request.Request(
            self._url, data=body, method="POST",
            headers={"Content-Type": "application/json; charset=utf-8"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout_s) as reply:
                code = reply.status
        except urllib.error.HTTPError as error:
            raise SinkError(
                f"webhook {self._url} answered {error.code}") from error
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise SinkError(
                f"webhook {self._url} unreachable: {error}") from error
        if not 200 <= code < 300:
            raise SinkError(f"webhook {self._url} answered {code}")

    def describe(self) -> str:
        """``webhook:<url>``."""
        return f"webhook:{self._url}"


class CallbackAlertSink(AlertSink):
    """Hands each alert to an in-process callable (library embedding)."""

    kind = "callback"

    def __init__(self, callback: Callable[[MonitorVerdict], None]) -> None:
        if not callable(callback):
            raise SinkError("callback sink needs a callable")
        self._callback = callback

    def emit(self, verdict: MonitorVerdict) -> None:
        """Invoke the callback; its exceptions become SinkError."""
        try:
            self._callback(verdict)
        except Exception as error:
            raise SinkError(
                f"callback sink raised {type(error).__name__}: {error}"
            ) from error

    def describe(self) -> str:
        """``callback:<name>``."""
        name = getattr(self._callback, "__name__", type(self._callback).__name__)
        return f"callback:{name}"


def parse_sink_spec(spec: str) -> AlertSink:
    """Build a sink from a CLI spec string.

    Accepted forms (the ``--alert-sink`` grammar):

    - ``jsonl:PATH`` — append alerts to a JSONL file.
    - ``webhook:URL`` — POST alerts to an http(s) endpoint.
    """
    scheme, separator, rest = spec.partition(":")
    if not separator or not rest:
        raise SinkError(
            f"malformed sink spec {spec!r}; expected jsonl:PATH or "
            f"webhook:URL")
    if scheme == "jsonl":
        return JsonlAlertSink(rest)
    if scheme == "webhook":
        return WebhookAlertSink(rest)
    raise SinkError(
        f"unknown sink scheme {scheme!r} in {spec!r}; expected jsonl "
        f"or webhook")
