"""Pluggable alert delivery for the serving daemon.

When the daemon scores a sample above HEALTHY it pushes the verdict to
every configured :class:`AlertSink`.  Three shapes cover the common
operational setups:

:class:`JsonlAlertSink`
    Appends one canonical JSON line per alert to a file — the durable
    default; ``tail -f`` is the minimum viable pager.
:class:`WebhookAlertSink`
    POSTs each alert as JSON to an HTTP endpoint (stdlib ``urllib``
    only) — for chat-ops bridges and incident routers.
:class:`CallbackAlertSink`
    Hands each alert to an in-process callable — for embedding the
    daemon as a library.

Sinks receive only alerting verdicts, after scoring is complete, so a
slow or failing sink can never change a verdict or block admission.
Delivery failures raise :class:`~repro.errors.SinkError` from
:meth:`AlertSink.emit`; the daemon catches these, counts them under
``alert_sink_errors``, and keeps serving.

Guaranteed delivery is layered on top by :class:`DeliveryPipeline`: the
daemon hands each alert to a per-sink queue and a worker thread retries
failed deliveries with exponential backoff (honoring a server-supplied
``Retry-After`` hint when the webhook answered 429/503), trips a
circuit breaker after consecutive final failures, and writes alerts it
could not deliver to a dead-letter JSONL file — one
:meth:`~repro.serve.scorer.MonitorVerdict.to_json_line` line each, so
an operator can re-deliver them later with
:func:`reprocess_dead_letter` (or ``repro-serve recover``).  An alert
handed to a pipeline is never silently dropped: it is delivered,
or it lands in the dead letter.

:func:`parse_sink_spec` turns the CLI's ``--alert-sink`` strings
(``jsonl:PATH[|fsync]``, ``webhook:URL[|timeout=SECONDS]``) into sink
instances.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.errors import SinkError
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.serve.scorer import MonitorVerdict

#: Webhook delivery timeout (seconds) unless the caller overrides it.
DEFAULT_WEBHOOK_TIMEOUT_S = 5.0


class AlertSink:
    """Interface every alert sink implements.

    ``emit`` delivers one alerting verdict; ``close`` releases any
    resources (idempotent).  Subclasses raise
    :class:`~repro.errors.SinkError` on delivery failure so the daemon
    can count and survive it.
    """

    #: Short name used in ``/status`` payloads and error messages.
    kind = "null"

    def emit(self, verdict: MonitorVerdict) -> None:
        """Deliver one alerting verdict (no-op in the base class)."""

    def close(self) -> None:
        """Release sink resources (no-op in the base class)."""

    def describe(self) -> str:
        """One-line, human-readable identity for status payloads."""
        return self.kind


class JsonlAlertSink(AlertSink):
    """Appends alerts as canonical JSON lines to a file.

    The file is opened lazily on the first alert and flushed after
    every line, so a crashed daemon leaves no half-written alert and an
    operator's ``tail -f`` sees alerts immediately.
    """

    kind = "jsonl"

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self._path = Path(path)
        self._file: Any = None
        self._fsync = fsync

    @property
    def path(self) -> Path:
        """Destination file."""
        return self._path

    def emit(self, verdict: MonitorVerdict) -> None:
        """Append one canonical JSON line (create the file on demand).

        With ``fsync`` the line is forced to stable storage before
        returning — alerts then survive machine power loss, not just a
        daemon crash, at a per-alert fsync cost.
        """
        try:
            if self._file is None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                self._file = self._path.open("a", encoding="utf-8")
            self._file.write(verdict.to_json_line() + "\n")
            self._file.flush()
            if self._fsync:
                os.fsync(self._file.fileno())
        except OSError as error:
            raise SinkError(
                f"jsonl sink cannot write {self._path}: {error}") from error

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._file is not None:
            if self._fsync:
                try:
                    os.fsync(self._file.fileno())
                except OSError:
                    pass
            self._file.close()
            self._file = None

    def describe(self) -> str:
        """``jsonl:<path>``."""
        return f"jsonl:{self._path}"


class WebhookAlertSink(AlertSink):
    """POSTs each alert as a JSON document to an HTTP endpoint."""

    kind = "webhook"

    def __init__(self, url: str, *,
                 timeout_s: float = DEFAULT_WEBHOOK_TIMEOUT_S) -> None:
        if not url.startswith(("http://", "https://")):
            raise SinkError(f"webhook sink needs an http(s) URL, got {url!r}")
        self._url = url
        self._timeout_s = timeout_s

    @property
    def url(self) -> str:
        """Destination endpoint."""
        return self._url

    @property
    def timeout_s(self) -> float:
        """Per-request timeout, seconds."""
        return self._timeout_s

    def emit(self, verdict: MonitorVerdict) -> None:
        """POST the verdict; non-2xx or transport failure is SinkError.

        A 429 or 503 answer carrying a numeric ``Retry-After`` header
        raises a :class:`~repro.errors.SinkError` with
        ``retry_after_s`` set — the delivery pipeline waits that long
        instead of its own exponential backoff.
        """
        body = (verdict.to_json_line() + "\n").encode("utf-8")
        request = urllib.request.Request(
            self._url, data=body, method="POST",
            headers={"Content-Type": "application/json; charset=utf-8"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout_s) as reply:
                code = reply.status
        except urllib.error.HTTPError as error:
            raise SinkError(
                f"webhook {self._url} answered {error.code}",
                retry_after_s=_retry_after_of(error)) from error
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise SinkError(
                f"webhook {self._url} unreachable: {error}") from error
        if not 200 <= code < 300:
            raise SinkError(f"webhook {self._url} answered {code}")

    def describe(self) -> str:
        """``webhook:<url>``."""
        return f"webhook:{self._url}"


def _retry_after_of(error: urllib.error.HTTPError) -> float | None:
    """Numeric ``Retry-After`` of a 429/503 answer, if present and sane.

    Only the delta-seconds form is honored (the HTTP-date form needs
    clock agreement that a retry hint does not deserve); anything
    unparsable or negative is ignored.
    """
    if error.code not in (429, 503):
        return None
    raw = error.headers.get("Retry-After") if error.headers else None
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


class CallbackAlertSink(AlertSink):
    """Hands each alert to an in-process callable (library embedding)."""

    kind = "callback"

    def __init__(self, callback: Callable[[MonitorVerdict], None]) -> None:
        if not callable(callback):
            raise SinkError("callback sink needs a callable")
        self._callback = callback

    def emit(self, verdict: MonitorVerdict) -> None:
        """Invoke the callback; its exceptions become SinkError."""
        try:
            self._callback(verdict)
        except Exception as error:
            raise SinkError(
                f"callback sink raised {type(error).__name__}: {error}"
            ) from error

    def describe(self) -> str:
        """``callback:<name>``."""
        name = getattr(self._callback, "__name__", type(self._callback).__name__)
        return f"callback:{name}"


@dataclass(frozen=True, slots=True)
class DeliveryPolicy:
    """How hard a :class:`DeliveryPipeline` tries before giving up.

    ``max_attempts`` bounds total tries per alert (1 = no retries);
    between tries the worker sleeps ``backoff_s * 2**attempt`` capped
    at ``backoff_cap_s`` — unless the failure carried a server
    ``retry_after_s`` hint, which wins.  ``breaker_threshold``
    consecutive *final* failures open the circuit breaker: for
    ``breaker_cooldown_s`` every alert fast-fails straight to the dead
    letter instead of burning retries against a down endpoint.
    ``queue_capacity`` bounds the pipeline's buffer; an alert arriving
    at a full queue goes directly to the dead letter (delivery must
    never push back into the scoring path).
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_cap_s: float = 2.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    queue_capacity: int = 1024

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SinkError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise SinkError("backoff seconds must be >= 0")
        if self.breaker_threshold < 1:
            raise SinkError("breaker_threshold must be >= 1")
        if self.queue_capacity < 1:
            raise SinkError("queue_capacity must be >= 1")


class DeadLetterWriter:
    """Append-only JSONL file of alerts that exhausted delivery.

    Lines are exactly
    :meth:`~repro.serve.scorer.MonitorVerdict.to_json_line`, flushed
    and fsynced per write — once delivery has already failed, the dead
    letter is the last copy and must survive a crash.  Several
    pipelines may share one writer (it locks internally).
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._file: Any = None
        self._lock = threading.Lock()
        self._written = 0

    @property
    def path(self) -> Path:
        """Destination file."""
        return self._path

    @property
    def written(self) -> int:
        """Alerts written since construction."""
        return self._written

    def write(self, verdict: MonitorVerdict) -> None:
        """Durably append one alert (raises SinkError on I/O failure)."""
        with self._lock:
            try:
                if self._file is None:
                    self._path.parent.mkdir(parents=True, exist_ok=True)
                    self._file = self._path.open("a", encoding="utf-8")
                self._file.write(verdict.to_json_line() + "\n")
                self._file.flush()
                os.fsync(self._file.fileno())
            except OSError as error:
                raise SinkError(
                    f"dead letter cannot write {self._path}: {error}"
                ) from error
            self._written += 1

    def close(self) -> None:
        """Close the file (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class DeliveryPipeline:
    """Guaranteed-delivery wrapper around one :class:`AlertSink`.

    The daemon submits alerts here instead of calling ``emit``
    directly; a worker thread delivers them in FIFO order under the
    pipeline's :class:`DeliveryPolicy`.  Outcomes per alert, exactly
    one of:

    - delivered — ``alert_sink_emits`` counted (``sink_retries``
      counted once per extra attempt it took);
    - finally failed — ``alert_sink_errors`` counted once, a
      ``sink-error`` event recorded, and the alert written to the dead
      letter (``dead_letter_alerts``) when one is configured.

    ``close`` drains the queue before closing the sink, so every
    submitted alert reaches one of those outcomes — the daemon calls
    it after the shard plane has stopped.
    """

    def __init__(self, sink: AlertSink, *,
                 policy: DeliveryPolicy | None = None,
                 dead_letter: DeadLetterWriter | None = None,
                 observer: PipelineObserver | None = None,
                 recorder: Any = None) -> None:
        self._sink = sink
        self._policy = policy if policy is not None else DeliveryPolicy()
        self._dead_letter = dead_letter
        self._observer = resolve_observer(observer)
        self._recorder = recorder
        self._queue: "queue.Queue[MonitorVerdict | None]" = queue.Queue(
            maxsize=self._policy.queue_capacity)
        self._breaker_failures = 0
        self._breaker_open_until = 0.0
        self._delivered = 0
        self._failed = 0
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name=f"repro-delivery-{sink.kind}",
            daemon=True)
        self._worker.start()

    @property
    def sink(self) -> AlertSink:
        """The wrapped destination."""
        return self._sink

    @property
    def delivered(self) -> int:
        """Alerts delivered successfully."""
        return self._delivered

    @property
    def failed(self) -> int:
        """Alerts that exhausted every attempt."""
        return self._failed

    def describe(self) -> str:
        """The wrapped sink's identity."""
        return self._sink.describe()

    def submit(self, verdict: MonitorVerdict) -> bool:
        """Enqueue one alert; never blocks the scoring path.

        Returns ``False`` when the queue is full — the alert then goes
        straight to the dead letter (and counts as a failure) rather
        than stalling ingest.
        """
        if self._closed:
            raise SinkError(
                f"delivery pipeline for {self.describe()} is closed")
        try:
            self._queue.put_nowait(verdict)
            return True
        except queue.Full:
            self._give_up(verdict, "delivery queue full")
            return False

    def close(self) -> None:
        """Drain everything submitted, then close the sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._worker.join()
        try:
            self._sink.close()
        except SinkError as error:
            self._record_error(str(error))

    # -- worker -----------------------------------------------------------

    def _run(self) -> None:
        while True:
            verdict = self._queue.get()
            if verdict is None:
                return
            self._deliver(verdict)

    def _deliver(self, verdict: MonitorVerdict) -> None:
        """Drive one alert to delivered-or-dead-lettered."""
        policy = self._policy
        if time.monotonic() < self._breaker_open_until:
            self._give_up(verdict, "circuit breaker open")
            return
        last_error = "delivery failed"
        for attempt in range(policy.max_attempts):
            if attempt:
                self._observer.count("sink_retries")
            try:
                self._sink.emit(verdict)
            except SinkError as error:
                last_error = str(error)
                if attempt + 1 < policy.max_attempts:
                    backoff = min(policy.backoff_s * (2 ** attempt),
                                  policy.backoff_cap_s)
                    if error.retry_after_s is not None:
                        backoff = min(error.retry_after_s,
                                      policy.backoff_cap_s)
                    if backoff > 0:
                        time.sleep(backoff)
                continue
            self._delivered += 1
            self._breaker_failures = 0
            self._observer.count("alert_sink_emits")
            return
        self._breaker_failures += 1
        if self._breaker_failures >= policy.breaker_threshold:
            self._breaker_open_until = (time.monotonic()
                                        + policy.breaker_cooldown_s)
            self._breaker_failures = 0
        self._give_up(verdict, last_error)

    def _give_up(self, verdict: MonitorVerdict, reason: str) -> None:
        """Count one final failure and park the alert in the dead letter."""
        self._failed += 1
        self._observer.count("alert_sink_errors")
        self._record_error(reason)
        if self._dead_letter is not None:
            try:
                self._dead_letter.write(verdict)
            except SinkError as error:
                self._record_error(str(error))
            else:
                self._observer.count("dead_letter_alerts")

    def _record_error(self, message: str) -> None:
        if self._recorder is not None:
            self._recorder.record("sink-error", message,
                                  sink=self._sink.describe())


def read_dead_letter(path: str | Path) -> list[MonitorVerdict]:
    """Load a dead-letter JSONL file back into verdict objects.

    Raises :class:`~repro.errors.SinkError` on unreadable files or
    malformed lines — a dead letter is a hand-off artifact, and
    silently skipping a corrupt alert would lose it twice.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise SinkError(
            f"cannot read dead letter {path}: {error}") from error
    verdicts = []
    for line_number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            verdicts.append(MonitorVerdict.from_dict(json.loads(line)))
        except (json.JSONDecodeError, SinkError) as error:
            raise SinkError(
                f"{path}:{line_number}: malformed dead-letter line "
                f"({error})") from error
    return verdicts


def reprocess_dead_letter(path: str | Path, sink: AlertSink) -> tuple[
        int, int]:
    """Re-deliver a dead-letter file through ``sink``.

    Each alert is emitted once (no retries — run again for another
    pass); alerts that still fail are written back so the file always
    holds exactly the undelivered remainder.  Returns
    ``(delivered, remaining)``.  Re-emitted lines are byte-identical
    to the original verdict stream (canonical JSON round-trips
    stably), so downstream consumers cannot tell a reprocessed alert
    from a live one.
    """
    path = Path(path)
    verdicts = read_dead_letter(path)
    remaining: list[MonitorVerdict] = []
    for verdict in verdicts:
        try:
            sink.emit(verdict)
        except SinkError:
            remaining.append(verdict)
    try:
        temp = path.with_name(path.name + ".tmp")
        with temp.open("w", encoding="utf-8") as handle:
            for verdict in remaining:
                handle.write(verdict.to_json_line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    except OSError as error:
        raise SinkError(
            f"cannot rewrite dead letter {path}: {error}") from error
    return len(verdicts) - len(remaining), len(remaining)


def parse_sink_spec(spec: str) -> AlertSink:
    """Build a sink from a CLI spec string.

    Accepted forms (the ``--alert-sink`` grammar):

    - ``jsonl:PATH`` — append alerts to a JSONL file; ``|fsync`` after
      the path forces each line to stable storage.
    - ``webhook:URL`` — POST alerts to an http(s) endpoint;
      ``|timeout=SECONDS`` after the URL overrides the
      request timeout (default
      :data:`DEFAULT_WEBHOOK_TIMEOUT_S`).
    """
    scheme, separator, rest = spec.partition(":")
    if not separator or not rest:
        raise SinkError(
            f"malformed sink spec {spec!r}; expected jsonl:PATH or "
            f"webhook:URL")
    rest, _, options = rest.partition("|")
    if not rest:
        raise SinkError(f"sink spec {spec!r} has an empty target")
    if scheme == "jsonl":
        fsync = False
        if options:
            if options != "fsync":
                raise SinkError(
                    f"unknown jsonl sink option {options!r} in {spec!r}; "
                    f"expected 'fsync'")
            fsync = True
        return JsonlAlertSink(rest, fsync=fsync)
    if scheme == "webhook":
        timeout_s = DEFAULT_WEBHOOK_TIMEOUT_S
        if options:
            key, eq, value = options.partition("=")
            if key != "timeout" or not eq:
                raise SinkError(
                    f"unknown webhook sink option {options!r} in "
                    f"{spec!r}; expected 'timeout=SECONDS'")
            try:
                timeout_s = float(value)
            except ValueError as error:
                raise SinkError(
                    f"bad webhook timeout {value!r} in {spec!r}") from error
            if timeout_s <= 0:
                raise SinkError(
                    f"webhook timeout must be positive, got {value!r}")
        return WebhookAlertSink(rest, timeout_s=timeout_s)
    raise SinkError(
        f"unknown sink scheme {scheme!r} in {spec!r}; expected jsonl "
        f"or webhook")
