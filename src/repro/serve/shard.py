"""Consistent-hash sharding of per-drive scoring state across workers.

The serving daemon's horizontal seam: a :class:`ShardSet` owns ``n``
shard workers, each holding one :class:`~repro.serve.scorer.StreamScorer`
(and therefore one keyed
:class:`~repro.core.monitor.DriveStateStore`).  Drives map to shards by
consistent hash of their serial (:class:`HashRing` — sha256-based, so
the mapping is stable across processes and Python hash seeds), which
keeps every drive's ring-buffer history and last level whole inside
exactly one shard no matter how batches arrive.

Sharding is a pure performance knob: verdicts are per-sample functions
of the record (and per-drive state keys on the serial), so a
:meth:`ShardSet.submit` returns byte-identical verdicts for any shard
count — the daemon's golden tests pin shard counts 1, 2 and 4 against
offline ``repro-serve score``.

Backpressure is explicit and all-or-nothing: the parent tracks batches
in flight per shard, and a batch whose target shard is at capacity is
rejected with :class:`~repro.errors.BackpressureError` *before any
sample of it is enqueued* — a rejected batch is never half-scored, so
retries cannot double-count a drive-hour.

Workers run with the null observer; the parent re-accounts
``samples_scored`` / ``alerts_emitted`` / ``verdict_stage`` /
``drives_tracked`` from the verdicts that come back, so telemetry
totals match the unsharded path exactly.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import queue
import threading
import time
from bisect import bisect_right
from typing import Any, Sequence

import numpy as np

from repro.errors import BackpressureError, ServeError
from repro.obs.observer import NULL_OBSERVER, PipelineObserver, resolve_observer
from repro.parallel import validate_backend
from repro.serve.bundle import ModelBundle
from repro.serve.scorer import MonitorVerdict, StreamScorer, VerdictBlock

#: Virtual nodes per shard on the hash ring; enough for <2% imbalance
#: at single-digit shard counts without measurable lookup cost.
DEFAULT_VNODES = 64

#: Batches in flight per shard before admission rejects with 429.
DEFAULT_QUEUE_CAPACITY = 64

#: Sentinel task asking a worker to snapshot its state and exit.
_STOP = None


def _point(key: str) -> int:
    """Map a string to a stable 64-bit ring position (sha256 prefix).

    Never Python's ``hash()`` — that is salted per process, and shard
    placement must agree between the parent and forked workers.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hash ring mapping drive serials to shard indices.

    Parameters
    ----------
    n_shards:
        Number of shards (>= 1).
    vnodes:
        Virtual nodes per shard; more vnodes smooth the key
        distribution at slightly higher setup cost.
    """

    def __init__(self, n_shards: int, *,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise ServeError(f"n_shards must be >= 1, got {n_shards}")
        if vnodes < 1:
            raise ServeError(f"vnodes must be >= 1, got {vnodes}")
        self._n_shards = n_shards
        pairs = sorted(
            (_point(f"shard-{shard}-vnode-{vnode}"), shard)
            for shard in range(n_shards)
            for vnode in range(vnodes)
        )
        self._points = [point for point, _ in pairs]
        self._shards = [shard for _, shard in pairs]

    @property
    def n_shards(self) -> int:
        """Number of shards on the ring."""
        return self._n_shards

    def shard_of(self, serial: str) -> int:
        """The shard owning ``serial`` (first vnode clockwise)."""
        index = bisect_right(self._points, _point(serial))
        return self._shards[index % len(self._shards)]


def _shard_worker(shard: int, payload: dict, tasks: Any, results: Any,
                  throttle_s: float) -> None:
    """One shard's scoring loop (runs in a thread or a child process).

    Consumes ``(request_id, serials, hours, matrix)`` tasks, scores
    each one *as one columnar block* on a private :class:`StreamScorer`
    (null observer — the parent re-accounts telemetry), and replies
    ``("verdicts", request_id, shard, block)`` with the
    struct-of-arrays :class:`~repro.serve.scorer.VerdictBlock` — on the
    process backend that pickles a handful of numpy arrays instead of a
    Python list of verdict objects.  A scoring failure replies
    ``("error", ...)`` with the message instead of killing the worker.
    The ``_STOP`` sentinel makes the worker emit a final
    ``("snapshot", ...)`` with its counters and state snapshot, then
    exit.
    """
    scorer = StreamScorer(ModelBundle.from_payload(payload),
                          observer=NULL_OBSERVER)
    while True:
        task = tasks.get()
        if task is _STOP or task is None:
            results.put(("snapshot", -1, shard, {
                "shard": shard,
                "samples_scored": scorer.samples_scored,
                "alerts_emitted": scorer.alerts_emitted,
                "drives_tracked": scorer.drives_tracked,
                "state": scorer.state.snapshot(),
            }))
            return
        request_id, serials, hours, matrix = task
        if throttle_s > 0.0:
            time.sleep(throttle_s)
        try:
            block = scorer.score_block(serials, hours, matrix)
        except Exception as error:
            results.put(("error", request_id, shard,
                         f"{type(error).__name__}: {error}"))
            continue
        results.put(("verdicts", request_id, shard, block))


class _PendingRequest:
    """Parent-side bookkeeping for one in-flight submit."""

    __slots__ = ("parts", "done", "results", "errors")

    def __init__(self, n_parts: int) -> None:
        self.parts = n_parts
        self.done = threading.Event()
        self.results: dict[int, VerdictBlock] = {}
        self.errors: list[str] = []


class ShardSet:
    """A fleet of shard workers behind one synchronous ``submit`` API.

    Parameters
    ----------
    bundle:
        The model bundle every shard scores with.
    n_shards:
        Worker count; drives spread across them by consistent hash.
    backend:
        ``"thread"`` (workers are threads, zero serialization cost) or
        ``"process"`` (workers are child processes — real CPU
        parallelism for the scoring math).  Validated by
        :func:`repro.parallel.validate_backend`.
    queue_capacity:
        Batches in flight per shard before :meth:`submit` rejects with
        :class:`~repro.errors.BackpressureError`.
    observer:
        Parent-side telemetry sink; workers themselves are silent.
    throttle_s:
        Artificial per-batch delay inside each worker.  A load-testing
        knob: the backpressure and drain tests use it to hold batches
        in flight deterministically.  Leave at ``0.0`` in production.
    retry_after_s:
        The wait hint carried by raised backpressure errors.
    """

    def __init__(self, bundle: ModelBundle, *, n_shards: int = 1,
                 backend: str = "thread",
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 observer: PipelineObserver | None = None,
                 throttle_s: float = 0.0,
                 retry_after_s: float = 1.0) -> None:
        if queue_capacity < 1:
            raise ServeError(
                f"queue_capacity must be >= 1, got {queue_capacity}")
        validate_backend(backend)
        self._bundle = bundle
        self._backend = backend
        self._capacity = queue_capacity
        self._observer = resolve_observer(observer)
        self._throttle_s = float(throttle_s)
        self._retry_after_s = float(retry_after_s)
        self._ring = HashRing(n_shards)
        self._lock = threading.Lock()
        self._inflight = [0] * n_shards
        self._pending: dict[int, _PendingRequest] = {}
        self._next_request = 0
        self._stopped = False
        self._seen: set[str] = set()
        self._snapshots: list[dict[str, Any] | None] = [None] * n_shards
        self._all_snapshots = threading.Event()

        payload = bundle.to_payload()
        if backend == "process":
            context = multiprocessing.get_context()
            self._results: Any = context.Queue()
            self._tasks = [context.Queue() for _ in range(n_shards)]
            self._workers: list[Any] = [
                context.Process(
                    target=_shard_worker,
                    args=(shard, payload, self._tasks[shard],
                          self._results, self._throttle_s),
                    name=f"repro-shard-{shard}", daemon=True)
                for shard in range(n_shards)
            ]
        else:
            self._results = queue.Queue()
            self._tasks = [queue.Queue() for _ in range(n_shards)]
            self._workers = [
                threading.Thread(
                    target=_shard_worker,
                    args=(shard, payload, self._tasks[shard],
                          self._results, self._throttle_s),
                    name=f"repro-shard-{shard}", daemon=True)
                for shard in range(n_shards)
            ]
        for worker in self._workers:
            worker.start()
        self._collector = threading.Thread(
            target=self._collect, name="repro-shard-collector", daemon=True)
        self._collector.start()

    # -- public surface ---------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of shard workers."""
        return self._ring.n_shards

    @property
    def backend(self) -> str:
        """Worker backend ("thread" or "process")."""
        return self._backend

    @property
    def queue_capacity(self) -> int:
        """Batches in flight per shard before backpressure."""
        return self._capacity

    @property
    def ring(self) -> HashRing:
        """The consistent hash ring used for placement."""
        return self._ring

    def shard_of(self, serial: str) -> int:
        """Which shard owns a drive's state."""
        return self._ring.shard_of(serial)

    def submit(self, serials: Sequence[str], hours: Sequence[int],
               matrix: np.ndarray) -> list[MonitorVerdict]:
        """Score one columnar batch; verdicts return in input row order.

        :meth:`submit_block` plus full verdict materialization, kept
        for callers that want per-sample objects; the daemon's hot path
        consumes the columnar block directly.
        """
        return self.submit_block(serials, hours, matrix).verdicts()

    def submit_block(self, serials: Sequence[str], hours: Sequence[int],
                     matrix: np.ndarray) -> VerdictBlock:
        """Score one columnar batch; verdict columns in input row order.

        Splits the batch by shard placement, enqueues one sub-batch per
        involved shard, blocks until all parts are scored, and stitches
        the per-shard :class:`~repro.serve.scorer.VerdictBlock` columns
        back into input row order — no verdict object is materialized
        anywhere on this path.  Admission is all-or-nothing: if *any*
        involved shard is at capacity, the whole batch is rejected with
        :class:`~repro.errors.BackpressureError` and no sample of it is
        enqueued.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ServeError(
                f"submit needs a 2-D record matrix, got {matrix.ndim}-D")
        if len(serials) != matrix.shape[0] or len(hours) != matrix.shape[0]:
            raise ServeError(
                f"column lengths disagree: {len(serials)} serials, "
                f"{len(hours)} hours, {matrix.shape[0]} record rows")
        if matrix.shape[0] == 0:
            return VerdictBlock.empty()

        by_shard: dict[int, list[int]] = {}
        for row, serial in enumerate(serials):
            by_shard.setdefault(self._ring.shard_of(serial), []).append(row)

        with self._lock:
            if self._stopped:
                raise ServeError("ShardSet is stopped; no new batches")
            saturated = [shard for shard in by_shard
                         if self._inflight[shard] >= self._capacity]
            if saturated:
                raise BackpressureError(
                    saturated[0], self._retry_after_s, self._capacity)
            request_id = self._next_request
            self._next_request += 1
            pending = _PendingRequest(len(by_shard))
            self._pending[request_id] = pending
            for shard in by_shard:
                self._inflight[shard] += 1
            self._seen.update(serials)
            # Enqueue under the same lock: stop() appends its sentinels
            # under this lock too, so an admitted batch's tasks always
            # sit ahead of the stop sentinel — drain can never skip an
            # admitted batch.  The queues are unbounded, so these puts
            # cannot block while the lock is held.
            for shard, rows in by_shard.items():
                self._tasks[shard].put((
                    request_id,
                    [serials[row] for row in rows],
                    [int(hours[row]) for row in rows],
                    matrix[rows],
                ))

        pending.done.wait()
        with self._lock:
            del self._pending[request_id]
        if pending.errors:
            raise ServeError(
                f"shard scoring failed: {'; '.join(pending.errors)}")

        block = VerdictBlock.gather(
            [str(serial) for serial in serials],
            [int(hour) for hour in hours],
            [(rows, pending.results[shard])
             for shard, rows in by_shard.items()])
        self._account(block)
        return block

    def inflight(self) -> list[int]:
        """Current batches in flight, per shard (a telemetry snapshot)."""
        with self._lock:
            return list(self._inflight)

    def drives_tracked(self) -> int:
        """Distinct drives admitted so far (sum of all shards' state)."""
        with self._lock:
            return len(self._seen)

    def stop(self) -> list[dict[str, Any]]:
        """Drain every shard and return their final snapshots.

        Sends the stop sentinel behind all queued work, so every
        admitted batch is scored before its worker exits (graceful
        drain).  Idempotent: repeated calls return the same snapshots.
        """
        with self._lock:
            already = self._stopped
            self._stopped = True
            if not already:
                for shard_queue in self._tasks:
                    shard_queue.put(_STOP)
        self._all_snapshots.wait()
        for worker in self._workers:
            worker.join(timeout=30.0)
        self._collector.join(timeout=30.0)
        return [dict(snapshot) for snapshot in self._snapshots
                if snapshot is not None]

    # -- internals --------------------------------------------------------

    def _account(self, block: VerdictBlock) -> None:
        """Parent-side telemetry for one scored batch (block-wise).

        Same counter totals, histogram observations and gauge value the
        per-verdict loop produced — reassembled from verdict columns so
        the hot path never materializes a verdict for telemetry's sake.
        """
        if not len(block):
            return
        self._observer.count("samples_scored", len(block))
        alerting = block.n_alerting
        if alerting:
            self._observer.count("alerts_emitted", alerting)
        for stage in block.finite_stages():
            self._observer.observe("verdict_stage", float(stage))
        self._observer.gauge("drives_tracked", self.drives_tracked())

    def _collect(self) -> None:
        """Collector loop: route worker replies to waiting submitters."""
        finished = 0
        while finished < self._ring.n_shards:
            kind, request_id, shard, body = self._results.get()
            if kind == "snapshot":
                self._snapshots[shard] = body
                finished += 1
                continue
            with self._lock:
                pending = self._pending.get(request_id)
                self._inflight[shard] -= 1
                if pending is None:
                    continue
                if kind == "error":
                    pending.errors.append(f"shard {shard}: {body}")
                else:
                    pending.results[shard] = body
                pending.parts -= 1
                if pending.parts == 0:
                    pending.done.set()
        self._all_snapshots.set()

    def __enter__(self) -> "ShardSet":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.stop()
        return False
