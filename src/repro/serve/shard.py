"""Consistent-hash sharding of per-drive scoring state across workers.

The serving daemon's horizontal seam: a :class:`ShardSet` owns ``n``
shard workers, each holding one :class:`~repro.serve.scorer.StreamScorer`
(and therefore one keyed
:class:`~repro.core.monitor.DriveStateStore`).  Drives map to shards by
consistent hash of their serial (:class:`HashRing` — sha256-based, so
the mapping is stable across processes and Python hash seeds), which
keeps every drive's ring-buffer history and last level whole inside
exactly one shard no matter how batches arrive.

Sharding is a pure performance knob: verdicts are per-sample functions
of the record (and per-drive state keys on the serial), so a
:meth:`ShardSet.submit` returns byte-identical verdicts for any shard
count — the daemon's golden tests pin shard counts 1, 2 and 4 against
offline ``repro-serve score``.

Backpressure is explicit and all-or-nothing: the parent tracks batches
in flight per shard, and a batch whose target shard is at capacity is
rejected with :class:`~repro.errors.BackpressureError` *before any
sample of it is enqueued* — a rejected batch is never half-scored, so
retries cannot double-count a drive-hour.

Crash safety is opt-in via ``wal_dir``: each worker then appends every
admitted block to its own :class:`~repro.serve.wal.ShardWal` *before*
scoring and checkpoints its scorer state every
``snapshot_interval_blocks``.  A built-in supervisor thread watches the
workers; when one dies (process SIGKILL, thread crash, or a heartbeat
timeout on the process backend) it fails that shard's in-flight
batches with :class:`~repro.errors.ShardRecoveringError`, respawns the
worker, and the replacement replays snapshot + WAL suffix back to
byte-identical state.  Replayed (and recently scored) blocks are
remembered by their caller-supplied ``block_id``, so a client retrying
a batch that died in the ack gap — appended to the WAL but never
answered — gets the cached verdicts instead of double-scoring.

Workers run with the null observer; the parent re-accounts
``samples_scored`` / ``alerts_emitted`` / ``verdict_stage`` /
``drives_tracked`` from the verdicts that come back (plus the recovery
counters ``wal_appends`` / ``wal_replayed_blocks`` /
``shard_restarts``), so telemetry totals match the unsharded path
exactly.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
import os
import queue
import signal
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import (BackpressureError, ServeError,
                          ShardRecoveringError, WalError)
from repro.obs.observer import NULL_OBSERVER, PipelineObserver, resolve_observer
from repro.parallel import validate_backend
from repro.serve.bundle import ModelBundle, content_hash
from repro.serve.scorer import MonitorVerdict, StreamScorer, VerdictBlock
from repro.serve.wal import (DEFAULT_FSYNC_EVERY, DEFAULT_SEGMENT_MAX_BYTES,
                             ShardWal, decode_block, encode_block)

#: Virtual nodes per shard on the hash ring; enough for <2% imbalance
#: at single-digit shard counts without measurable lookup cost.
DEFAULT_VNODES = 64

#: Batches in flight per shard before admission rejects with 429.
DEFAULT_QUEUE_CAPACITY = 64

#: Blocks scored between WAL state checkpoints.  Snapshots only bound
#: replay length — durability comes from the per-block append — so the
#: interval trades a little recovery latency (a few hundred blocks of
#: vectorized replay, i.e. seconds) for near-zero steady-state cost.
DEFAULT_SNAPSHOT_INTERVAL_BLOCKS = 256

#: Supervisor poll interval for dead-worker detection.
DEFAULT_SUPERVISE_POLL_S = 0.05

#: Sentinel task asking a worker to snapshot its state and exit.
_STOP = None

#: Sentinel task making a worker die abruptly — no snapshot, no reply.
#: The chaos harness's thread-backend stand-in for SIGKILL.
_CRASH = "__repro_crash__"

#: Marker heading a promotion task ``(_PROMOTE, request_id, payload,
#: generation)``: the worker swaps its scorer to the new bundle (drive
#: state intact), rebinds + snapshots its WAL, and replies
#: ``("promoted", ...)``.
_PROMOTE = "__repro_promote__"


def _point(key: str) -> int:
    """Map a string to a stable 64-bit ring position (sha256 prefix).

    Never Python's ``hash()`` — that is salted per process, and shard
    placement must agree between the parent and forked workers.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hash ring mapping drive serials to shard indices.

    Parameters
    ----------
    n_shards:
        Number of shards (>= 1).
    vnodes:
        Virtual nodes per shard; more vnodes smooth the key
        distribution at slightly higher setup cost.
    """

    def __init__(self, n_shards: int, *,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise ServeError(f"n_shards must be >= 1, got {n_shards}")
        if vnodes < 1:
            raise ServeError(f"vnodes must be >= 1, got {vnodes}")
        self._n_shards = n_shards
        pairs = sorted(
            (_point(f"shard-{shard}-vnode-{vnode}"), shard)
            for shard in range(n_shards)
            for vnode in range(vnodes)
        )
        self._points = [point for point, _ in pairs]
        self._shards = [shard for _, shard in pairs]

    @property
    def n_shards(self) -> int:
        """Number of shards on the ring."""
        return self._n_shards

    def shard_of(self, serial: str) -> int:
        """The shard owning ``serial`` (first vnode clockwise)."""
        index = bisect_right(self._points, _point(serial))
        return self._shards[index % len(self._shards)]


@dataclass(frozen=True, slots=True)
class WalSettings:
    """Per-shard WAL configuration shipped to a worker (picklable).

    ``crash_after_seq`` is a chaos hook: the worker dies abruptly right
    after appending the record with that sequence number — inside the
    ack gap, the hardest window for exactly-once semantics.  Used by
    the deterministic recovery tests; leave ``None`` in production.
    """

    directory: str
    bundle_sha256: str
    segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES
    fsync_every: int = DEFAULT_FSYNC_EVERY
    snapshot_interval_blocks: int = DEFAULT_SNAPSHOT_INTERVAL_BLOCKS
    crash_after_seq: int | None = None
    generation: int = 0


def _worker_die() -> None:
    """Die the way a crash would: no cleanup, no snapshot, no reply.

    In a child process ``os._exit`` skips every handler (the closest
    in-process stand-in for SIGKILL); in a thread the caller returns
    instead — a thread cannot exit the interpreter without taking the
    parent with it.
    """
    if multiprocessing.parent_process() is not None:
        os._exit(1)


class _PipeReply:
    """Worker-side reply endpoint over a private one-way pipe.

    Process-backend workers must not share a reply queue: an
    ``mp.Queue`` guards its pipe with a cross-process write semaphore,
    and a worker SIGKILLed while its feeder thread holds it (the window
    is every reply send) leaves the semaphore acquired forever —
    wedging every later writer, including the respawned worker's
    ``ready`` announcement.  A private pipe per worker generation makes
    the blast radius of a crash exactly the channel that died with it;
    the parent just drops the broken reader and moves on.

    Quacks like ``queue.Queue.put`` so the worker body stays
    backend-agnostic (thread workers still share a plain queue — they
    cannot be killed mid-send).
    """

    __slots__ = ("_conn",)

    def __init__(self, conn: Any) -> None:
        self._conn = conn

    def put(self, item: Any) -> None:
        """Send one reply (synchronous — delivered before returning)."""
        self._conn.send(item)


def _remember(dedup: "OrderedDict[str, Any]", block_id: str, value: Any,
              limit: int) -> None:
    """Cache one block's outcome for duplicate-delivery detection."""
    dedup[block_id] = value
    while len(dedup) > limit:
        dedup.popitem(last=False)


def _shard_worker(shard: int, payload: dict, tasks: Any, results: Any,
                  throttle_s: float,
                  wal_settings: WalSettings | None = None) -> None:
    """One shard's scoring loop (runs in a thread or a child process).

    Startup: build the scorer; with WAL enabled, open the shard's
    :class:`~repro.serve.wal.ShardWal`, restore the last scorer
    checkpoint, replay the WAL suffix (caching each replayed block's
    verdicts under its ``block_id``), then announce
    ``("ready", -1, shard, info)``.  An unusable WAL announces
    ``("wal_failed", -1, shard, message)`` and exits instead — serving
    blindly without the log it was asked to keep would be worse.

    Main loop: consume ``(request_id, block_id, serials, hours,
    matrix)`` tasks.  A ``block_id`` seen before (replayed from the
    WAL, or recently scored) replies its cached outcome without
    re-scoring — the exactly-once half of crash recovery.  Otherwise
    the block is appended to the WAL *before* scoring, scored *as one
    columnar block* on a private :class:`StreamScorer` (null observer —
    the parent re-accounts telemetry), and answered
    ``("verdicts", request_id, shard, block)`` with the
    struct-of-arrays :class:`~repro.serve.scorer.VerdictBlock`.  A
    scoring failure replies ``("error", ...)`` with the message instead
    of killing the worker.  Every ``snapshot_interval_blocks`` scored
    blocks the scorer state is checkpointed, bounding replay time.

    The ``_STOP`` sentinel makes the worker checkpoint (WAL on), emit a
    final ``("snapshot", ...)`` with its counters and state snapshot,
    then exit; the ``_CRASH`` sentinel (chaos only) makes it die with
    none of that.
    """
    scorer = StreamScorer(ModelBundle.from_payload(payload),
                          observer=NULL_OBSERVER)
    wal: ShardWal | None = None
    dedup: "OrderedDict[str, Any]" = OrderedDict()
    dedup_limit = 256
    ready_info: dict[str, Any] = {"shard": shard, "replayed_blocks": 0,
                                  "snapshot_seq": 0, "last_seq": 0,
                                  "serials": []}
    if wal_settings is not None:
        dedup_limit = max(256, 2 * wal_settings.snapshot_interval_blocks)
        try:
            wal = ShardWal(
                Path(wal_settings.directory),
                segment_max_bytes=wal_settings.segment_max_bytes,
                fsync_every=wal_settings.fsync_every,
                bundle_sha256=wal_settings.bundle_sha256,
                generation=wal_settings.generation)
            recovery = wal.open()
            if recovery.snapshot is not None:
                scorer.restore_state(recovery.snapshot)
            for record in recovery.records:
                block_id, serials, hours, matrix = decode_block(
                    record.payload)
                try:
                    block = scorer.score_block(serials, hours, matrix)
                except Exception as error:
                    _remember(dedup, block_id,
                              f"{type(error).__name__}: {error}",
                              dedup_limit)
                    continue
                _remember(dedup, block_id, block, dedup_limit)
            ready_info = {
                "shard": shard,
                "replayed_blocks": recovery.replayed_blocks,
                "snapshot_seq": recovery.snapshot_seq,
                "last_seq": wal.last_seq,
                "serials": scorer.state.serials(),
            }
        except (WalError, ServeError) as error:
            results.put(("wal_failed", -1, shard,
                         f"{type(error).__name__}: {error}"))
            return
    results.put(("ready", -1, shard, ready_info))

    blocks_since_snapshot = 0
    while True:
        task = tasks.get()
        if task is _STOP or task is None:
            if wal is not None:
                try:
                    wal.write_snapshot(scorer.dump_state())
                    wal.close()
                except WalError:
                    pass  # a failed final checkpoint only lengthens replay
            results.put(("snapshot", -1, shard, {
                "shard": shard,
                "samples_scored": scorer.samples_scored,
                "alerts_emitted": scorer.alerts_emitted,
                "drives_tracked": scorer.drives_tracked,
                "state": scorer.state.snapshot(),
            }))
            return
        if task == _CRASH:
            _worker_die()
            return
        if isinstance(task, tuple) and task and task[0] == _PROMOTE:
            _marker, request_id, new_payload, generation = task
            try:
                scorer.swap_bundle(ModelBundle.from_payload(new_payload))
                if wal is not None:
                    # Rebind-then-snapshot is the promotion fence: the
                    # replayable suffix (everything past this snapshot)
                    # was logged under, and replays through, the new
                    # models — recovery never crosses a bundle boundary.
                    wal.rebind(content_hash(new_payload), generation)
                    wal.write_snapshot(scorer.dump_state())
                    blocks_since_snapshot = 0
            except (ServeError, WalError) as error:
                results.put(("error", request_id, shard,
                             f"{type(error).__name__}: {error}"))
                continue
            results.put(("promoted", request_id, shard, {
                "shard": shard,
                "generation": int(generation),
                "snapshot_seq": wal.last_seq if wal is not None else 0,
            }))
            continue
        request_id, block_id, serials, hours, matrix = task
        if throttle_s > 0.0:
            time.sleep(throttle_s)
        cached = dedup.get(block_id)
        if cached is not None:
            kind = "error" if isinstance(cached, str) else "verdicts"
            results.put((kind, request_id, shard, cached))
            continue
        if wal is not None:
            try:
                seq = wal.append(encode_block(block_id, list(serials),
                                              list(hours), matrix))
            except WalError as error:
                results.put(("error", request_id, shard,
                             f"WalError: {error}"))
                continue
            if (wal_settings is not None
                    and wal_settings.crash_after_seq is not None
                    and seq == wal_settings.crash_after_seq):
                wal.sync()
                _worker_die()
                return
        try:
            block = scorer.score_block(serials, hours, matrix)
        except Exception as error:
            message = f"{type(error).__name__}: {error}"
            if wal is not None:
                _remember(dedup, block_id, message, dedup_limit)
            results.put(("error", request_id, shard, message))
            continue
        if wal is not None:
            _remember(dedup, block_id, block, dedup_limit)
        results.put(("verdicts", request_id, shard, block))
        if wal is not None and wal_settings is not None:
            blocks_since_snapshot += 1
            if blocks_since_snapshot >= wal_settings.snapshot_interval_blocks:
                try:
                    wal.write_snapshot(scorer.dump_state())
                except WalError:
                    pass  # next interval retries; replay just stays longer
                blocks_since_snapshot = 0


class _PendingRequest:
    """Parent-side bookkeeping for one in-flight submit."""

    __slots__ = ("outstanding", "done", "results", "errors", "died_shard")

    def __init__(self, shards: Sequence[int]) -> None:
        self.outstanding = set(shards)
        self.done = threading.Event()
        self.results: dict[int, VerdictBlock] = {}
        self.errors: list[str] = []
        self.died_shard: int | None = None


class ShardSet:
    """A fleet of shard workers behind one synchronous ``submit`` API.

    Parameters
    ----------
    bundle:
        The model bundle every shard scores with.
    n_shards:
        Worker count; drives spread across them by consistent hash.
    backend:
        ``"thread"`` (workers are threads, zero serialization cost) or
        ``"process"`` (workers are child processes — real CPU
        parallelism for the scoring math).  Validated by
        :func:`repro.parallel.validate_backend`.
    queue_capacity:
        Batches in flight per shard before :meth:`submit` rejects with
        :class:`~repro.errors.BackpressureError`.
    observer:
        Parent-side telemetry sink; workers themselves are silent.
    throttle_s:
        Artificial per-batch delay inside each worker.  A load-testing
        knob: the backpressure and drain tests use it to hold batches
        in flight deterministically.  Leave at ``0.0`` in production.
    retry_after_s:
        The wait hint carried by raised backpressure and
        shard-recovering errors.
    wal_dir:
        Root directory for per-shard write-ahead logs (crash safety
        off when ``None``).  Shard ``k`` logs under
        ``wal_dir/shard-<k>``; an existing WAL is replayed on startup,
        so a restarted ShardSet resumes exactly where the previous one
        died.
    snapshot_interval_blocks / wal_fsync_every / wal_segment_max_bytes:
        WAL tuning, see :mod:`repro.serve.wal`.
    supervise:
        Run the dead-worker supervisor thread (default on; the chaos
        tests rely on it, production should never turn it off).
    heartbeat_timeout_s:
        Process backend only: a shard with batches in flight but no
        reply for this long is presumed hung and SIGKILLed (the WAL
        fences its state), then respawned like any dead worker.
        ``None`` disables the heartbeat.
    crash_after_seq:
        Chaos hook, per shard: ``{shard: seq}`` makes that worker die
        right after appending WAL record ``seq`` (see
        :class:`WalSettings`).  Test-only.
    """

    def __init__(self, bundle: ModelBundle, *, n_shards: int = 1,
                 backend: str = "thread",
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 observer: PipelineObserver | None = None,
                 throttle_s: float = 0.0,
                 retry_after_s: float = 1.0,
                 wal_dir: str | Path | None = None,
                 snapshot_interval_blocks: int =
                 DEFAULT_SNAPSHOT_INTERVAL_BLOCKS,
                 wal_fsync_every: int = DEFAULT_FSYNC_EVERY,
                 wal_segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
                 supervise: bool = True,
                 heartbeat_timeout_s: float | None = None,
                 crash_after_seq: Mapping[int, int] | None = None) -> None:
        if queue_capacity < 1:
            raise ServeError(
                f"queue_capacity must be >= 1, got {queue_capacity}")
        if snapshot_interval_blocks < 1:
            raise ServeError(
                f"snapshot_interval_blocks must be >= 1, got "
                f"{snapshot_interval_blocks}")
        validate_backend(backend)
        self._bundle = bundle
        self._backend = backend
        self._capacity = queue_capacity
        self._observer = resolve_observer(observer)
        self._throttle_s = float(throttle_s)
        self._retry_after_s = float(retry_after_s)
        self._ring = HashRing(n_shards)
        self._lock = threading.Lock()
        self._inflight = [0] * n_shards
        self._pending: dict[int, _PendingRequest] = {}
        self._next_request = 0
        self._stopped = False
        self._seen: set[str] = set()
        self._snapshots: list[dict[str, Any] | None] = [None] * n_shards
        self._all_snapshots = threading.Event()
        self._status = ["serving"] * n_shards
        self._ready_events = [threading.Event() for _ in range(n_shards)]
        self._restarts = [0] * n_shards
        self._last_activity = [time.monotonic()] * n_shards
        self._heartbeat_timeout_s = heartbeat_timeout_s
        self._payload = bundle.to_payload()

        self._wal_dir = Path(wal_dir) if wal_dir is not None else None
        self._wal_settings: list[WalSettings | None] = [None] * n_shards
        if self._wal_dir is not None:
            bundle_sha = content_hash(self._payload)
            crash_after_seq = dict(crash_after_seq or {})
            for shard in range(n_shards):
                self._wal_settings[shard] = WalSettings(
                    directory=str(self._wal_dir / f"shard-{shard:03d}"),
                    bundle_sha256=bundle_sha,
                    segment_max_bytes=wal_segment_max_bytes,
                    fsync_every=wal_fsync_every,
                    snapshot_interval_blocks=snapshot_interval_blocks,
                    crash_after_seq=crash_after_seq.get(shard),
                    generation=bundle.generation,
                )

        if backend == "process":
            # Workers are (re)spawned from a process that already runs
            # supervisor/collector/delivery threads; fork() from a
            # multi-threaded parent can deadlock the child on inherited
            # locks.  The forkserver forks from a clean single-threaded
            # helper instead, which makes mid-stream respawns safe.
            try:
                self._context = multiprocessing.get_context("forkserver")
            except ValueError:  # platform without forkserver
                self._context = multiprocessing.get_context()
            self._results: Any = None  # replies ride per-worker pipes
        else:
            self._context = None
            self._results = queue.Queue()
        # Parent-side lifecycle injections (synthesized snapshots for
        # failed shards) merge into the reply stream through here.
        self._injected: queue.Queue = queue.Queue()
        self._reply_readers: list[Any] = [None] * n_shards
        self._reply_writers: list[Any] = [None] * n_shards
        self._retired_readers: list[Any] = []
        self._tasks: list[Any] = [self._new_task_queue()
                                  for _ in range(n_shards)]
        self._workers: list[Any] = [self._spawn_worker(shard)
                                    for shard in range(n_shards)]
        for shard, worker in enumerate(self._workers):
            worker.start()
            self._close_reply_writer(shard)
        self._collector = threading.Thread(
            target=self._collect, name="repro-shard-collector", daemon=True)
        self._collector.start()
        self._supervisor_stop = threading.Event()
        self._supervisor: threading.Thread | None = None
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervise, name="repro-shard-supervisor",
                daemon=True)
            self._supervisor.start()

    # -- public surface ---------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of shard workers."""
        return self._ring.n_shards

    @property
    def backend(self) -> str:
        """Worker backend ("thread" or "process")."""
        return self._backend

    @property
    def queue_capacity(self) -> int:
        """Batches in flight per shard before backpressure."""
        return self._capacity

    @property
    def ring(self) -> HashRing:
        """The consistent hash ring used for placement."""
        return self._ring

    @property
    def wal_enabled(self) -> bool:
        """Whether workers write per-shard WALs."""
        return self._wal_dir is not None

    @property
    def wal_dir(self) -> Path | None:
        """Root WAL directory (``None`` when crash safety is off)."""
        return self._wal_dir

    def shard_of(self, serial: str) -> int:
        """Which shard owns a drive's state."""
        return self._ring.shard_of(serial)

    def shard_status(self) -> list[str]:
        """Per-shard lifecycle: ``serving`` / ``recovering`` / ``failed``."""
        with self._lock:
            return list(self._status)

    def shard_restarts(self) -> list[int]:
        """Supervisor respawns per shard since construction."""
        with self._lock:
            return list(self._restarts)

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until every shard has announced readiness.

        Readiness means the worker finished any snapshot restore + WAL
        replay and is consuming tasks.  Returns ``False`` on timeout.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        for event in self._ready_events:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            if not event.wait(remaining):
                return False
        return True

    def kill_shard(self, shard: int) -> None:
        """Kill one worker abruptly — the chaos harness's entry point.

        Process backend: SIGKILL, exactly the failure mode a kernel OOM
        kill or node reboot produces.  Thread backend: a crash sentinel
        that makes the worker abandon its loop with no snapshot and no
        reply (a thread cannot be killed from outside).  The supervisor
        detects the death and respawns the shard.
        """
        if not 0 <= shard < self.n_shards:
            raise ServeError(f"no such shard: {shard}")
        worker = self._workers[shard]
        if self._backend == "process":
            if worker.pid is not None:
                try:
                    os.kill(worker.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            worker.join(timeout=10.0)
        else:
            self._tasks[shard].put(_CRASH)

    def submit(self, serials: Sequence[str], hours: Sequence[int],
               matrix: np.ndarray) -> list[MonitorVerdict]:
        """Score one columnar batch; verdicts return in input row order.

        :meth:`submit_block` plus full verdict materialization, kept
        for callers that want per-sample objects; the daemon's hot path
        consumes the columnar block directly.
        """
        return self.submit_block(serials, hours, matrix).verdicts()

    def submit_block(self, serials: Sequence[str], hours: Sequence[int],
                     matrix: np.ndarray,
                     block_id: str | None = None) -> VerdictBlock:
        """Score one columnar batch; verdict columns in input row order.

        Splits the batch by shard placement, enqueues one sub-batch per
        involved shard, blocks until all parts are scored, and stitches
        the per-shard :class:`~repro.serve.scorer.VerdictBlock` columns
        back into input row order — no verdict object is materialized
        anywhere on this path.  Admission is all-or-nothing: if *any*
        involved shard is at capacity the whole batch is rejected with
        :class:`~repro.errors.BackpressureError`, and if any involved
        shard is replaying after a crash it is rejected with
        :class:`~repro.errors.ShardRecoveringError`; either way no
        sample of it is enqueued.

        ``block_id`` names the batch for crash-safe retries: with the
        WAL enabled, resubmitting the same id after a worker died
        mid-batch returns the original verdicts without re-scoring
        (exactly-once application).  Auto-generated when omitted — auto
        ids are unique, so an unnamed batch gets no dedup protection.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ServeError(
                f"submit needs a 2-D record matrix, got {matrix.ndim}-D")
        if len(serials) != matrix.shape[0] or len(hours) != matrix.shape[0]:
            raise ServeError(
                f"column lengths disagree: {len(serials)} serials, "
                f"{len(hours)} hours, {matrix.shape[0]} record rows")
        if matrix.shape[0] == 0:
            return VerdictBlock.empty()

        by_shard: dict[int, list[int]] = {}
        for row, serial in enumerate(serials):
            by_shard.setdefault(self._ring.shard_of(serial), []).append(row)

        with self._lock:
            if self._stopped:
                raise ServeError("ShardSet is stopped; no new batches")
            for shard in by_shard:
                if self._status[shard] == "recovering":
                    raise ShardRecoveringError(shard, self._retry_after_s)
                if self._status[shard].startswith("failed"):
                    raise ServeError(
                        f"shard {shard} is failed: {self._status[shard]}")
            saturated = [shard for shard in by_shard
                         if self._inflight[shard] >= self._capacity]
            if saturated:
                raise BackpressureError(
                    saturated[0], self._retry_after_s, self._capacity)
            request_id = self._next_request
            self._next_request += 1
            if block_id is None:
                block_id = (f"auto-{os.getpid():x}-{time.time_ns():x}-"
                            f"{request_id}")
            pending = _PendingRequest(by_shard)
            self._pending[request_id] = pending
            for shard in by_shard:
                self._inflight[shard] += 1
            self._seen.update(serials)
            # Enqueue under the same lock: stop() appends its sentinels
            # under this lock too, so an admitted batch's tasks always
            # sit ahead of the stop sentinel — drain can never skip an
            # admitted batch.  The queues are unbounded, so these puts
            # cannot block while the lock is held.
            for shard, rows in by_shard.items():
                self._tasks[shard].put((
                    request_id,
                    f"{block_id}/{shard}" if len(by_shard) > 1 else block_id,
                    [serials[row] for row in rows],
                    [int(hours[row]) for row in rows],
                    matrix[rows],
                ))
        if self._wal_dir is not None:
            self._observer.count("wal_appends", len(by_shard))

        pending.done.wait()
        with self._lock:
            del self._pending[request_id]
        if pending.errors:
            if pending.died_shard is not None:
                raise ShardRecoveringError(pending.died_shard,
                                           self._retry_after_s)
            raise ServeError(
                f"shard scoring failed: {'; '.join(pending.errors)}")

        block = VerdictBlock.gather(
            [str(serial) for serial in serials],
            [int(hour) for hour in hours],
            [(rows, pending.results[shard])
             for shard, rows in by_shard.items()])
        self._account(block)
        return block

    def promote(self, bundle: ModelBundle) -> list[dict[str, Any]]:
        """Atomically swap every shard's scoring models to ``bundle``.

        The swap is enqueued behind all previously admitted batches on
        every shard (under the same lock :meth:`submit_block` enqueues
        through), so the promotion is a clean fence in each shard's
        stream: batches admitted before it score with the old models,
        batches admitted after it score with the new ones, and drive
        state carries across untouched.  WAL-enabled workers rebind
        their identity file to the new bundle and snapshot immediately,
        so crash recovery replays only post-promotion records — through
        the models that logged them.

        Blocks until every shard has applied the swap; returns the
        per-shard promotion receipts in shard order.  Refuses while any
        shard is recovering or failed (a recovering shard would replay
        its WAL under the wrong identity).
        """
        payload = bundle.to_payload()
        new_sha = content_hash(payload)
        with self._lock:
            if self._stopped:
                raise ServeError("ShardSet is stopped; cannot promote")
            for shard, status in enumerate(self._status):
                if status != "serving":
                    raise ServeError(
                        f"cannot promote while shard {shard} is {status}")
            request_id = self._next_request
            self._next_request += 1
            pending = _PendingRequest(range(self.n_shards))
            self._pending[request_id] = pending
            for shard in range(self.n_shards):
                self._inflight[shard] += 1
                self._tasks[shard].put(
                    (_PROMOTE, request_id, payload, bundle.generation))
            # Respawned workers must come back under the new identity.
            self._bundle = bundle
            self._payload = payload
            for shard, settings in enumerate(self._wal_settings):
                if settings is not None:
                    self._wal_settings[shard] = replace(
                        settings, bundle_sha256=new_sha,
                        generation=bundle.generation)
        pending.done.wait()
        with self._lock:
            del self._pending[request_id]
        if pending.errors:
            if pending.died_shard is not None:
                raise ShardRecoveringError(pending.died_shard,
                                           self._retry_after_s)
            raise ServeError(
                f"bundle promotion failed: {'; '.join(pending.errors)}")
        return [dict(pending.results[shard])
                for shard in sorted(pending.results)]

    def inflight(self) -> list[int]:
        """Current batches in flight, per shard (a telemetry snapshot)."""
        with self._lock:
            return list(self._inflight)

    def drives_tracked(self) -> int:
        """Distinct drives admitted so far (sum of all shards' state)."""
        with self._lock:
            return len(self._seen)

    def stop(self) -> list[dict[str, Any]]:
        """Drain every shard and return their final snapshots.

        Sends the stop sentinel behind all queued work, so every
        admitted batch is scored before its worker exits (graceful
        drain).  The supervisor halts first — a worker exiting after
        its final snapshot is not a crash.  Idempotent: repeated calls
        return the same snapshots.
        """
        self._supervisor_stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10.0)
        with self._lock:
            already = self._stopped
            self._stopped = True
            if not already:
                for shard, shard_queue in enumerate(self._tasks):
                    if self._status[shard].startswith("failed"):
                        # Nobody is consuming this queue; synthesize an
                        # empty snapshot so the drain can complete.
                        self._injected.put(("snapshot", -1, shard, {
                            "shard": shard, "samples_scored": 0,
                            "alerts_emitted": 0, "drives_tracked": 0,
                            "state": None,
                        }))
                        continue
                    shard_queue.put(_STOP)
        self._all_snapshots.wait(timeout=60.0)
        for worker in self._workers:
            worker.join(timeout=30.0)
        self._collector.join(timeout=30.0)
        if not self._collector.is_alive():
            with self._lock:
                leftovers = ([conn for conn in self._reply_readers
                              if conn is not None] + self._retired_readers)
                self._reply_readers = [None] * self.n_shards
                self._retired_readers = []
            for conn in leftovers:
                try:
                    conn.close()
                except OSError:
                    pass
        return [dict(snapshot) for snapshot in self._snapshots
                if snapshot is not None]

    # -- internals --------------------------------------------------------

    def _new_task_queue(self) -> Any:
        """A fresh task queue for one worker (backend-appropriate)."""
        if self._context is not None:
            return self._context.Queue()
        return queue.Queue()

    def _spawn_worker(self, shard: int) -> Any:
        """Build (not start) the worker for one shard.

        Process backend: each worker generation gets a fresh private
        reply pipe (see :class:`_PipeReply` for why sharing one queue
        across killable processes deadlocks); the previous generation's
        reader is retired for the collector to close.
        """
        if self._context is not None:
            reader, writer = self._context.Pipe(duplex=False)
            old = self._reply_readers[shard]
            if old is not None:
                self._retired_readers.append(old)
            self._reply_readers[shard] = reader
            self._reply_writers[shard] = writer
            args = (shard, self._payload, self._tasks[shard],
                    _PipeReply(writer), self._throttle_s,
                    self._wal_settings[shard])
            return self._context.Process(
                target=_shard_worker, args=args,
                name=f"repro-shard-{shard}", daemon=True)
        args = (shard, self._payload, self._tasks[shard], self._results,
                self._throttle_s, self._wal_settings[shard])
        return threading.Thread(
            target=_shard_worker, args=args,
            name=f"repro-shard-{shard}", daemon=True)

    def _close_reply_writer(self, shard: int) -> None:
        """Drop the parent's copy of a worker's reply-pipe write end.

        Must happen after ``worker.start()`` (the child dups the handle
        during spawn); once only the worker holds the write end, the
        worker's death — clean or SIGKILL — turns into prompt EOF on
        the parent's reader instead of a silent forever-empty pipe.
        """
        writer = self._reply_writers[shard]
        if writer is not None:
            self._reply_writers[shard] = None
            try:
                writer.close()
            except OSError:
                pass

    def _respawn(self, shard: int) -> None:
        """Replace a dead worker: fail its in-flight batches, restart.

        Batches queued to the dead worker were never WAL-appended by it
        (the WAL write happens inside the worker), so failing them back
        to the caller is safe — a retry cannot double-apply.  The shard
        reports ``recovering`` (new submits are rejected with a 503
        mapping) until the replacement announces ready.
        """
        with self._lock:
            if self._stopped:
                return
            self._status[shard] = "recovering"
            self._ready_events[shard].clear()
            self._restarts[shard] += 1
            for pending in self._pending.values():
                if shard in pending.outstanding:
                    pending.outstanding.discard(shard)
                    pending.died_shard = shard
                    pending.errors.append(
                        f"shard {shard}: worker died mid-batch")
                    if not pending.outstanding:
                        pending.done.set()
            self._inflight[shard] = 0
            self._last_activity[shard] = time.monotonic()
            self._tasks[shard] = self._new_task_queue()
            worker = self._spawn_worker(shard)
            self._workers[shard] = worker
        worker.start()
        self._close_reply_writer(shard)
        self._observer.count("shard_restarts")

    def _supervise(self) -> None:
        """Watch the workers; respawn any that die outside a drain."""
        while not self._supervisor_stop.wait(DEFAULT_SUPERVISE_POLL_S):
            for shard in range(self.n_shards):
                with self._lock:
                    if self._stopped:
                        return
                    worker = self._workers[shard]
                    status = self._status[shard]
                    snapshotted = self._snapshots[shard] is not None
                    inflight = self._inflight[shard]
                    last_activity = self._last_activity[shard]
                if status.startswith("failed") or snapshotted:
                    continue
                if worker.is_alive():
                    if (self._heartbeat_timeout_s is not None
                            and self._backend == "process"
                            and inflight > 0
                            and time.monotonic() - last_activity
                            > self._heartbeat_timeout_s):
                        # Presumed hung: SIGKILL fences its WAL writes;
                        # the next poll sees the death and respawns.
                        self.kill_shard(shard)
                    continue
                self._respawn(shard)

    def _account(self, block: VerdictBlock) -> None:
        """Parent-side telemetry for one scored batch (block-wise).

        Same counter totals, histogram observations and gauge value the
        per-verdict loop produced — reassembled from verdict columns so
        the hot path never materializes a verdict for telemetry's sake.
        """
        if not len(block):
            return
        self._observer.count("samples_scored", len(block))
        alerting = block.n_alerting
        if alerting:
            self._observer.count("alerts_emitted", alerting)
        for stage in block.finite_stages():
            self._observer.observe("verdict_stage", float(stage))
        self._observer.gauge("drives_tracked", self.drives_tracked())

    def _next_reply(self) -> tuple[Any, ...]:
        """Block until one worker reply (or injected message) arrives.

        Thread backend: poll the shared reply queue.  Process backend:
        ``multiprocessing.connection.wait`` across every live worker's
        private reply pipe — a reader that hits EOF (its worker died,
        possibly mid-send) is closed and dropped; the supervisor
        handles the respawn, which installs a fresh pipe.  Retired
        readers from replaced generations are closed here too: the
        collector is the only thread that ever reads or closes a
        reply pipe, so there is no close-during-wait race.
        """
        while True:
            try:
                return self._injected.get_nowait()
            except queue.Empty:
                pass
            if self._backend != "process":
                try:
                    return self._results.get(timeout=0.1)
                except queue.Empty:
                    continue
            with self._lock:
                retired = self._retired_readers
                self._retired_readers = []
                active = {conn: shard
                          for shard, conn in enumerate(self._reply_readers)
                          if conn is not None}
            for conn in retired:
                try:
                    conn.close()
                except OSError:
                    pass
            if not active:
                time.sleep(DEFAULT_SUPERVISE_POLL_S)
                continue
            for conn in multiprocessing.connection.wait(
                    list(active), timeout=0.1):
                try:
                    return conn.recv()
                except (EOFError, OSError):
                    # Worker died (possibly mid-send, truncating the
                    # frame).  Drop the channel; its in-flight batches
                    # are failed by the supervisor's respawn.
                    shard = active[conn]
                    with self._lock:
                        if self._reply_readers[shard] is conn:
                            self._reply_readers[shard] = None
                    try:
                        conn.close()
                    except OSError:
                        pass

    def _collect(self) -> None:
        """Collector loop: route worker replies to waiting submitters.

        Also absorbs the lifecycle messages: ``ready`` flips a shard
        back to ``serving`` (reseeding the parent's drive census from
        the replayed state), ``wal_failed`` marks it failed, and
        ``snapshot`` counts toward drain completion.  Replies from a
        worker generation that was failed out (a crashed worker's last
        gasp, or a task the supervisor already answered with an error)
        are dropped — their inflight accounting was reset at respawn.
        """
        finished = 0
        while finished < self._ring.n_shards:
            kind, request_id, shard, body = self._next_reply()
            if kind == "snapshot":
                with self._lock:
                    fresh = self._snapshots[shard] is None
                    self._snapshots[shard] = body
                if fresh:
                    finished += 1
                continue
            if kind == "ready":
                with self._lock:
                    self._status[shard] = "serving"
                    self._last_activity[shard] = time.monotonic()
                    self._seen.update(body.get("serials", ()))
                    self._ready_events[shard].set()
                replayed = body.get("replayed_blocks", 0)
                if replayed:
                    self._observer.count("wal_replayed_blocks", replayed)
                continue
            if kind == "wal_failed":
                with self._lock:
                    self._status[shard] = f"failed: {body}"
                    self._ready_events[shard].set()
                    for pending in self._pending.values():
                        if shard in pending.outstanding:
                            pending.outstanding.discard(shard)
                            pending.errors.append(f"shard {shard}: {body}")
                            if not pending.outstanding:
                                pending.done.set()
                continue
            with self._lock:
                self._last_activity[shard] = time.monotonic()
                pending = self._pending.get(request_id)
                if pending is None or shard not in pending.outstanding:
                    continue
                self._inflight[shard] -= 1
                pending.outstanding.discard(shard)
                if kind == "error":
                    pending.errors.append(f"shard {shard}: {body}")
                else:
                    pending.results[shard] = body
                if not pending.outstanding:
                    pending.done.set()
        self._all_snapshots.set()

    def __enter__(self) -> "ShardSet":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.stop()
        return False
