"""Per-shard write-ahead log with snapshot-bounded replay.

The crash-safety backbone of the serving daemon (`docs/robustness.md`):
every admitted ingest block is appended to its shard's WAL *before*
scoring, and the shard's full scorer state is checkpointed to an atomic
snapshot every N blocks — so a killed worker recovers by loading the
last snapshot and replaying only the WAL suffix past it, reproducing
its pre-crash state byte for byte.

Layout of one shard's WAL directory::

    wal.json                  # identity: schema + bundle sha256
    segment-000000000001.wal  # records, named by their first seq
    segment-000000000087.wal
    snapshot-000000000086.json  # scorer state as of seq 86

Records are framed, not bare JSONL: each is a header line
``WAL <seq> <n_bytes> <sha256>\\n`` followed by exactly ``n_bytes`` of
JSON payload and a newline.  The digest makes corruption detectable
per record, and the length makes scanning O(records), not O(bytes).
On open, a damaged or short record *at the tail of the last segment*
is a torn write (the crash happened mid-append): the segment is
truncated at the record boundary and recovery proceeds.  Damage
anywhere else means real corruption and raises
:class:`~repro.errors.WalError` — replaying past a hole would
silently diverge from the pre-crash state.

Durability is batched: ``fsync`` runs every ``fsync_every`` appends
(and always at snapshot/close).  A SIGKILL'd *process* loses nothing
from batching — written pages survive in the OS cache — so crash
recovery is exact even between fsyncs; only whole-machine power loss
can drop the last unsynced appends.  Set ``fsync_every=1`` for strict
power-loss durability.

Snapshots use the fsync-then-``os.replace`` pattern of
:mod:`repro.experiments.checkpoint` (via :mod:`repro.ioutil`), embed
the sequence number they cover, and prune both older snapshots and
segments wholly behind them — steady-state disk usage is one snapshot
plus the live WAL suffix.

Float fidelity: a block's sample matrix is stored as the raw
little-endian ``float64`` buffer, base64-coded — bit-exact by
construction and an order of magnitude cheaper to encode than
``repr``-ing every float on the ingest hot path.  Snapshot state still
goes through plain ``json.dumps``, whose ``repr``-based floats
round-trip ``float64`` exactly.  The canonical JSON helpers
(:mod:`repro.core.serialize`) round to 12 significant digits for
diffable artifacts and must never be used here — a rounded sample
would break replay byte-identity.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.errors import WalError
from repro.ioutil import atomic_write_text

#: Version stamped into ``wal.json``, record headers and snapshots;
#: bump on breaking format changes.
WAL_SCHEMA = 1

#: Rotate to a fresh segment once the current one exceeds this size.
DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024

#: Appends between fsyncs (1 = strict power-loss durability).
DEFAULT_FSYNC_EVERY = 8

_META_NAME = "wal.json"
_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".wal"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"
_HEADER_MAGIC = b"WAL"


def encode_block(block_id: str, serials: list[str], hours: list[int],
                 matrix: np.ndarray) -> dict[str, Any]:
    """The WAL payload for one admitted ingest block.

    The sample matrix is stored as its raw little-endian ``float64``
    buffer, base64-coded, plus its shape — bit-exact by construction
    (no float formatting at all) and cheap enough for the ingest hot
    path; :func:`decode_block` restores the identical matrix.
    """
    values = np.ascontiguousarray(matrix, dtype="<f8")
    return {
        "block_id": block_id,
        "serials": list(serials),
        "hours": [int(hour) for hour in hours],
        "shape": list(values.shape),
        "values": base64.b64encode(values.tobytes()).decode("ascii"),
    }


def decode_block(payload: dict[str, Any]) -> tuple[
        str, list[str], list[int], np.ndarray]:
    """Invert :func:`encode_block` (bit-exact float64 round-trip)."""
    try:
        shape = tuple(int(side) for side in payload["shape"])
        matrix = np.frombuffer(
            base64.b64decode(payload["values"], validate=True),
            dtype="<f8").reshape(shape).astype(np.float64, copy=True)
        return (str(payload["block_id"]),
                [str(serial) for serial in payload["serials"]],
                [int(hour) for hour in payload["hours"]],
                matrix)
    except (KeyError, TypeError, ValueError) as error:
        raise WalError(f"malformed WAL block payload: {error}") from error


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One replayable WAL entry: its sequence number and JSON payload."""

    seq: int
    payload: dict[str, Any]


@dataclass(frozen=True, slots=True)
class WalRecovery:
    """What :meth:`ShardWal.open` found on disk.

    ``snapshot`` is the newest valid snapshot's embedded state payload
    (``None`` on a fresh WAL), ``snapshot_seq`` the sequence it covers,
    and ``records`` the suffix to replay — every record with
    ``seq > snapshot_seq``, in order.
    """

    snapshot: dict[str, Any] | None
    snapshot_seq: int
    records: list[WalRecord]

    @property
    def replayed_blocks(self) -> int:
        """Records in the replay suffix."""
        return len(self.records)


class ShardWal:
    """Append-only framed log + atomic snapshots for one shard.

    Single-writer by construction: exactly one shard worker owns a WAL
    directory at a time (the supervisor never starts a replacement
    before the incumbent is dead).  Not thread-safe.

    Parameters
    ----------
    directory:
        This shard's WAL directory (created on open).
    segment_max_bytes / fsync_every:
        Rotation threshold and fsync batching (see module docs).
    bundle_sha256:
        Identity of the model bundle producing the logged stream; a WAL
        written under a different bundle refuses to open, because
        replaying its blocks through other models would silently
        produce different state.
    generation:
        Lineage generation of that bundle (see
        :attr:`repro.serve.bundle.ModelBundle.generation`).  Stamped
        into the identity file and every snapshot; a WAL or snapshot
        recorded under a different generation refuses to open for the
        same reason the sha check exists — after a live promotion,
        replay must run through the models of the generation that
        logged the suffix.  ``None`` adopts whatever the directory
        already records.
    """

    def __init__(self, directory: str | Path, *,
                 segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
                 fsync_every: int = DEFAULT_FSYNC_EVERY,
                 bundle_sha256: str | None = None,
                 generation: int | None = None) -> None:
        if segment_max_bytes < 1:
            raise WalError("segment_max_bytes must be positive")
        if fsync_every < 1:
            raise WalError("fsync_every must be positive")
        self._dir = Path(directory)
        self._segment_max_bytes = int(segment_max_bytes)
        self._fsync_every = int(fsync_every)
        self._bundle_sha256 = bundle_sha256
        self._generation = generation
        self._file: Any = None
        self._segment_path: Path | None = None
        self._segment_bytes = 0
        self._last_seq = 0
        self._unsynced = 0
        self._opened = False

    # -- lifecycle --------------------------------------------------------

    @property
    def directory(self) -> Path:
        """This shard's WAL directory."""
        return self._dir

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest appended (or recovered) record."""
        return self._last_seq

    @property
    def generation(self) -> int | None:
        """Bundle generation recorded in the WAL identity (if any)."""
        return self._generation

    def open(self) -> WalRecovery:
        """Create/validate the directory and scan it for recovery.

        Returns the newest snapshot plus the record suffix past it (see
        :class:`WalRecovery`); truncates a torn tail in place.  Must be
        called exactly once, before any append.
        """
        if self._opened:
            raise WalError(f"WAL {self._dir} is already open")
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise WalError(
                f"cannot create WAL directory {self._dir}: {error}"
            ) from error
        self._check_meta()
        snapshot_seq, snapshot = self._load_newest_snapshot()
        records: list[WalRecord] = []
        segments = self._segments()
        for index, segment in enumerate(segments):
            last_segment = index == len(segments) - 1
            for record in self._scan_segment(segment,
                                             truncate_torn=last_segment):
                if record.seq != self._last_seq + 1 and self._last_seq:
                    raise WalError(
                        f"{segment}: sequence jumped from {self._last_seq} "
                        f"to {record.seq}")
                self._last_seq = record.seq
                if record.seq > snapshot_seq:
                    records.append(record)
        self._last_seq = max(self._last_seq, snapshot_seq)
        self._opened = True
        return WalRecovery(snapshot=snapshot, snapshot_seq=snapshot_seq,
                           records=records)

    def close(self) -> None:
        """Flush, fsync and close the live segment (idempotent)."""
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None
        self._opened = False

    # -- appending --------------------------------------------------------

    def append(self, payload: dict[str, Any]) -> int:
        """Frame and append one record; returns its sequence number.

        Rotates to a fresh segment when the current one is over the
        size threshold, and fsyncs every ``fsync_every`` appends.
        """
        if not self._opened:
            raise WalError("WAL must be opened before appending")
        seq = self._last_seq + 1
        body = json.dumps(payload, separators=(",", ":"),
                          sort_keys=True).encode("utf-8")
        digest = hashlib.sha256(body).hexdigest()
        frame = (_HEADER_MAGIC
                 + f" {seq} {len(body)} {digest}\n".encode("ascii")
                 + body + b"\n")
        try:
            if (self._file is None
                    or self._segment_bytes >= self._segment_max_bytes):
                self._rotate(seq)
            assert self._file is not None
            self._file.write(frame)
            self._segment_bytes += len(frame)
            self._unsynced += 1
            if self._unsynced >= self._fsync_every:
                self.sync()
            else:
                self._file.flush()
        except OSError as error:
            raise WalError(
                f"cannot append to WAL {self._dir}: {error}") from error
        self._last_seq = seq
        return seq

    def sync(self) -> None:
        """Flush and fsync the live segment (no-op when nothing is open)."""
        if self._file is None:
            return
        try:
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError as error:
            raise WalError(
                f"cannot fsync WAL {self._dir}: {error}") from error
        self._unsynced = 0

    # -- snapshots --------------------------------------------------------

    def write_snapshot(self, state: dict[str, Any]) -> Path:
        """Checkpoint ``state`` as of the last appended record.

        The snapshot is written atomically (fsync before ``os.replace``)
        after syncing the live segment, so it never references records
        that are not themselves durable.  Older snapshots and segments
        wholly covered by this one are pruned.
        """
        if not self._opened:
            raise WalError("WAL must be opened before snapshotting")
        self.sync()
        seq = self._last_seq
        path = self._dir / f"{_SNAPSHOT_PREFIX}{seq:012d}{_SNAPSHOT_SUFFIX}"
        document = {"schema": WAL_SCHEMA, "seq": seq,
                    "bundle_sha256": self._bundle_sha256,
                    "generation": self._generation, "state": state}
        body = json.dumps(document, separators=(",", ":"), sort_keys=True)
        try:
            atomic_write_text(path, body + "\n")
        except OSError as error:
            raise WalError(
                f"cannot write WAL snapshot {path}: {error}") from error
        self._prune(seq)
        return path

    # -- internals --------------------------------------------------------

    def _check_meta(self) -> None:
        """Create or validate the WAL identity file."""
        meta_path = self._dir / _META_NAME
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as error:
                raise WalError(
                    f"unreadable WAL meta {meta_path}: {error}") from error
            recorded = meta.get("bundle_sha256")
            if (self._bundle_sha256 is not None and recorded is not None
                    and recorded != self._bundle_sha256):
                raise WalError(
                    f"WAL {self._dir} was written by bundle "
                    f"{recorded[:12]}…, refusing to replay it through "
                    f"bundle {self._bundle_sha256[:12]}… — move the WAL "
                    f"aside or serve the original bundle")
            recorded_gen = meta.get("generation")
            if (self._generation is not None and recorded_gen is not None
                    and int(recorded_gen) != self._generation):
                raise WalError(
                    f"WAL {self._dir} was written under bundle "
                    f"generation {recorded_gen}, refusing to replay it "
                    f"through generation {self._generation} — recover "
                    f"with the bundle generation that logged it")
            if self._generation is None and recorded_gen is not None:
                self._generation = int(recorded_gen)
            if meta.get("schema") != WAL_SCHEMA:
                raise WalError(
                    f"WAL {self._dir} has schema {meta.get('schema')!r}, "
                    f"this build reads schema {WAL_SCHEMA}")
            return
        self._write_meta()

    def _write_meta(self) -> None:
        """Atomically (re)write the WAL identity file."""
        meta_path = self._dir / _META_NAME
        try:
            atomic_write_text(meta_path, json.dumps(
                {"schema": WAL_SCHEMA,
                 "bundle_sha256": self._bundle_sha256,
                 "generation": self._generation},
                sort_keys=True) + "\n")
        except OSError as error:
            raise WalError(
                f"cannot write WAL meta {meta_path}: {error}") from error

    def rebind(self, bundle_sha256: str, generation: int) -> None:
        """Re-identify an open WAL to a newly promoted bundle.

        Atomically rewrites the identity file with the new sha256 and
        generation; the caller (a shard worker applying a promotion)
        must snapshot immediately after, so the replayable suffix never
        crosses a bundle boundary — everything past the post-promote
        snapshot was logged, and will be replayed, under the new
        models.
        """
        if not self._opened:
            raise WalError("WAL must be opened before rebinding")
        self._bundle_sha256 = bundle_sha256
        self._generation = int(generation)
        self._write_meta()

    def _segments(self) -> list[Path]:
        """Segment files sorted by first sequence number."""
        return sorted(self._dir.glob(
            f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))

    def _snapshots(self) -> list[Path]:
        """Snapshot files sorted by covered sequence number."""
        return sorted(self._dir.glob(
            f"{_SNAPSHOT_PREFIX}*{_SNAPSHOT_SUFFIX}"))

    def _load_newest_snapshot(self) -> tuple[int, dict[str, Any] | None]:
        """The newest valid snapshot's ``(seq, state)``, or ``(0, None)``.

        An unreadable *newest* snapshot falls back to the previous one
        (its covered records are still in un-pruned segments, so
        recovery stays exact); the damaged file is ignored.
        """
        for path in reversed(self._snapshots()):
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
                seq = int(document["seq"])
                state = document["state"]
            except (OSError, json.JSONDecodeError, KeyError,
                    TypeError, ValueError):
                continue
            if (self._bundle_sha256 is not None
                    and document.get("bundle_sha256") is not None
                    and document["bundle_sha256"] != self._bundle_sha256):
                raise WalError(
                    f"WAL snapshot {path} was produced by a different "
                    f"bundle; refusing to restore from it")
            snapshot_gen = document.get("generation")
            if (self._generation is not None and snapshot_gen is not None
                    and int(snapshot_gen) != self._generation):
                raise WalError(
                    f"WAL snapshot {path} was produced under bundle "
                    f"generation {snapshot_gen}, this WAL expects "
                    f"generation {self._generation}; refusing to "
                    f"restore from it")
            return seq, state
        return 0, None

    def _scan_segment(self, path: Path, *,
                      truncate_torn: bool) -> Iterator[WalRecord]:
        """Yield every valid record of one segment, in order.

        A damaged record ends the scan: with ``truncate_torn`` (the last
        segment) the file is truncated at the damage and the torn bytes
        discarded; otherwise damage is corruption and raises
        :class:`~repro.errors.WalError`.
        """
        try:
            with path.open("rb") as handle:
                while True:
                    start = handle.tell()
                    header = handle.readline()
                    if not header:
                        return
                    record = self._parse_record(handle, header)
                    if record is None:
                        if not truncate_torn:
                            raise WalError(
                                f"corrupt WAL record at {path}:{start} "
                                f"with later data present; refusing to "
                                f"replay past a hole")
                        with path.open("r+b") as writer:
                            writer.truncate(start)
                        return
                    yield record
        except OSError as error:
            raise WalError(
                f"cannot read WAL segment {path}: {error}") from error

    @staticmethod
    def _parse_record(handle: Any, header: bytes) -> WalRecord | None:
        """Decode one framed record; ``None`` on any damage."""
        parts = header.split()
        if (len(parts) != 4 or parts[0] != _HEADER_MAGIC
                or not header.endswith(b"\n")):
            return None
        try:
            seq, n_bytes = int(parts[1]), int(parts[2])
        except ValueError:
            return None
        expected = parts[3].decode("ascii", errors="replace")
        body = handle.read(n_bytes + 1)
        if len(body) != n_bytes + 1 or not body.endswith(b"\n"):
            return None
        body = body[:-1]
        if hashlib.sha256(body).hexdigest() != expected:
            return None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return WalRecord(seq=seq, payload=payload)

    def _rotate(self, first_seq: int) -> None:
        """Open a fresh segment that will start at ``first_seq``."""
        if self._file is not None:
            self.sync()
            self._file.close()
        self._segment_path = self._dir / (
            f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}")
        self._file = self._segment_path.open("ab")
        self._segment_bytes = self._segment_path.stat().st_size
        self._unsynced = 0

    def _prune(self, snapshot_seq: int) -> None:
        """Drop snapshots and segments made redundant by ``snapshot_seq``.

        A segment is redundant when the *next* segment starts at or
        before ``snapshot_seq + 1`` (every record it holds is covered);
        the live segment is never pruned.  Pruning failures are
        non-fatal — stale files cost disk, not correctness.
        """
        for path in self._snapshots()[:-1]:
            try:
                path.unlink()
            except OSError:
                pass
        segments = self._segments()
        firsts = [self._segment_first_seq(path) for path in segments]
        for index, path in enumerate(segments[:-1]):
            if path == self._segment_path:
                continue
            next_first = firsts[index + 1]
            if next_first is not None and next_first <= snapshot_seq + 1:
                try:
                    path.unlink()
                except OSError:
                    pass

    @staticmethod
    def _segment_first_seq(path: Path) -> int | None:
        """The first sequence number encoded in a segment's file name."""
        stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return None

    def __enter__(self) -> "ShardWal":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.close()
        return False
