"""``repro-serve`` — score live SMART telemetry against a model bundle.

The deployment-side entry point.  Where ``repro-characterize`` trains
(and, with ``--export-model``, publishes) the models, ``repro-serve``
consumes the published artifact:

* ``score`` — read a sample stream (CSV rows of ``serial,hour,<Table I
  attributes>``, stdin by default) and emit one canonical JSON verdict
  line per sample;
* ``replay`` — push a whole dataset through the scorer at maximum
  throughput, fanning drives out over ``--jobs`` workers;
* ``watch`` — ``score`` with the live telemetry plane attached: while
  the stream scores, ``/metrics`` (Prometheus), ``/health`` and
  ``/status`` answer on an HTTP port and a flight recorder keeps the
  recent alerts (see :mod:`repro.serve.watch`);
* ``daemon`` — the fleet-scale serving process: samples arrive over
  HTTP (``POST /ingest``), score on ``--shards`` consistent-hash
  shards with bounded queues and explicit 429 backpressure, and alerts
  fan out to ``--alert-sink`` destinations; SIGTERM drains gracefully
  (see :mod:`repro.serve.daemon` and ``docs/operations.md``);
* ``recover`` — offline crash-recovery tooling: replay a daemon's
  per-shard WAL directories (``--wal-dir``) the way a respawned worker
  would and print the recovered counters, and/or re-deliver a
  dead-letter file (``--dead-letter``) through fresh sinks;
* ``bench`` — measure bundle load latency and scoring throughput on a
  synthetic stream, printing a JSON summary.

Examples::

   repro-characterize --simulate 2000 --export-model fleet.bundle.json
   repro-serve score --bundle fleet.bundle.json < stream.csv
   repro-serve replay --bundle fleet.bundle.json --simulate 500 --jobs 4
   repro-serve watch --bundle fleet.bundle.json --port 9100 < stream.csv
   repro-serve daemon --bundle fleet.bundle.json --shards 4 --port 9200 \\
       --wal-dir /var/lib/repro/wal --dead-letter dead-letters.jsonl \\
       --alert-sink jsonl:alerts.jsonl
   repro-serve recover --bundle fleet.bundle.json \\
       --wal-dir /var/lib/repro/wal
   repro-serve bench --bundle fleet.bundle.json --rounds 5
"""

from __future__ import annotations

import argparse
import contextlib
import csv
import signal
import sys
import threading
import time
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from repro.core.serialize import canonical_json_dumps
from repro.data.loader import load_csv
from repro.errors import ReproError, ServeError
from repro.obs import logging as obs_logging
from repro.obs.export import PeriodicSnapshotWriter
from repro.obs.observer import (
    NULL_OBSERVER,
    PipelineObserver,
    TelemetryObserver,
)
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder
from repro.serve.bundle import content_hash, load_bundle
from repro.serve.daemon import ServingDaemon
from repro.serve.scorer import MonitorVerdict, StreamScorer, replay_fleet
from repro.serve.shard import (DEFAULT_QUEUE_CAPACITY,
                               DEFAULT_SNAPSHOT_INTERVAL_BLOCKS)
from repro.serve.sinks import parse_sink_spec, reprocess_dead_letter
from repro.serve.wal import ShardWal, decode_block
from repro.serve.watch import WatchService
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet

#: Samples scored per ``push_many`` batch on the ``score`` stream — one
#: normalizer pass and one tree pass per group per batch, while keeping
#: arrival-order latency bounded.
STREAM_BATCH_SIZE = 256


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument grammar (``score``/``replay``/``bench``)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Score SMART telemetry streams against a trained "
                    "degradation model bundle.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser, *,
                   require_bundle: bool = True) -> None:
        sub.add_argument("--bundle", required=require_bundle, metavar="PATH",
                         help="model bundle written by "
                              "'repro-characterize --export-model'")
        telemetry = sub.add_argument_group("telemetry")
        telemetry.add_argument("-v", "--verbose", action="count", default=0,
                               help="log progress (-vv for debug)")
        telemetry.add_argument("--log-json", action="store_true",
                               help="emit log records as JSON lines")
        telemetry.add_argument("--trace", metavar="PATH", default=None,
                               help="write the span tree here as JSON")
        telemetry.add_argument("--metrics", metavar="PATH", default=None,
                               help="write the metrics snapshot here as JSON")

    score = commands.add_parser(
        "score", help="score a CSV sample stream to JSONL verdicts")
    add_common(score)
    score.add_argument("--input", metavar="PATH", default="-",
                       help="sample stream: CSV with a "
                            "'serial,hour,<attributes>' header "
                            "(default '-': stdin)")
    score.add_argument("--output", metavar="PATH", default=None,
                       help="write JSONL verdicts here (default: stdout)")
    score.add_argument("--alerts-only", action="store_true",
                       help="emit only WATCH/CRITICAL verdicts")

    replay = commands.add_parser(
        "replay", help="replay a whole dataset at maximum throughput")
    add_common(replay)
    source = replay.add_mutually_exclusive_group(required=True)
    source.add_argument("--csv", metavar="PATH",
                        help="native-format CSV dataset to replay")
    source.add_argument("--simulate", type=int, metavar="N_DRIVES",
                        help="simulate a fleet of this size instead")
    replay.add_argument("--seed", type=int, default=42,
                        help="seed for --simulate")
    replay.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="replay workers (1 = serial, 0 = all CPUs); "
                             "any value emits identical verdicts")
    replay.add_argument("--output", metavar="PATH", default=None,
                        help="write JSONL verdicts here (default: "
                             "summary only)")
    replay.add_argument("--alerts-only", action="store_true",
                        help="write only WATCH/CRITICAL verdicts")

    watch = commands.add_parser(
        "watch", help="score a stream while serving /metrics, /health "
                      "and /status over HTTP")
    add_common(watch)
    watch.add_argument("--input", metavar="PATH", default="-",
                       help="sample stream: CSV with a "
                            "'serial,hour,<attributes>' header "
                            "(default '-': stdin)")
    watch.add_argument("--output", metavar="PATH", default=None,
                       help="write JSONL verdicts here (default: stdout)")
    watch.add_argument("--alerts-only", action="store_true",
                       help="emit only WATCH/CRITICAL verdicts")
    watch.add_argument("--host", default="127.0.0.1",
                       help="telemetry HTTP bind host (default 127.0.0.1)")
    watch.add_argument("--port", type=int, default=0,
                       help="telemetry HTTP port (default 0: ephemeral)")
    watch.add_argument("--port-file", metavar="PATH", default=None,
                       help="write the bound port here once listening "
                            "(for scripts scraping an ephemeral port)")
    watch.add_argument("--batch-size", type=int, default=STREAM_BATCH_SIZE,
                       metavar="N",
                       help="samples scored per batch "
                            f"(default {STREAM_BATCH_SIZE})")
    watch.add_argument("--throttle", type=float, default=0.0,
                       metavar="SECONDS",
                       help="sleep between batches (default 0: full speed)")
    watch.add_argument("--linger", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep serving this long after the stream "
                            "ends (default 0)")
    watch.add_argument("--recorder-capacity", type=int,
                       default=DEFAULT_CAPACITY, metavar="N",
                       help="flight recorder ring size "
                            f"(default {DEFAULT_CAPACITY})")
    watch.add_argument("--recorder-dump", metavar="PATH", default=None,
                       help="dump the flight recorder here at exit "
                            "(and on crash)")
    watch.add_argument("--snapshot", metavar="PATH", default=None,
                       help="periodically write a combined metrics "
                            "snapshot here")
    watch.add_argument("--snapshot-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="snapshot refresh interval (default 5)")

    daemon = commands.add_parser(
        "daemon", help="serve scoring over HTTP: sharded state, bounded "
                       "queues, alert sinks, graceful drain")
    add_common(daemon)
    daemon.add_argument("--shards", type=int, default=1, metavar="N",
                        help="shard workers; drives spread by consistent "
                             "hash of serial (default 1)")
    daemon.add_argument("--backend", default="thread",
                        choices=("thread", "process"),
                        help="shard worker backend (default thread)")
    daemon.add_argument("--queue-capacity", type=int,
                        default=DEFAULT_QUEUE_CAPACITY, metavar="N",
                        help="batches in flight per shard before 429 "
                             f"(default {DEFAULT_QUEUE_CAPACITY})")
    daemon.add_argument("--host", default="127.0.0.1",
                        help="HTTP bind host (default 127.0.0.1)")
    daemon.add_argument("--port", type=int, default=0,
                        help="HTTP port (default 0: ephemeral)")
    daemon.add_argument("--port-file", metavar="PATH", default=None,
                        help="write the bound port here once listening "
                             "(for scripts scraping an ephemeral port)")
    daemon.add_argument("--alert-sink", action="append", default=[],
                        metavar="SPEC",
                        help="alert destination, repeatable: jsonl:PATH "
                             "or webhook:URL")
    daemon.add_argument("--recorder-capacity", type=int,
                        default=DEFAULT_CAPACITY, metavar="N",
                        help="flight recorder ring size "
                             f"(default {DEFAULT_CAPACITY})")
    daemon.add_argument("--retry-after", type=float, default=1.0,
                        metavar="SECONDS",
                        help="Retry-After hint on 429 replies (default 1)")
    daemon.add_argument("--final-snapshot", metavar="PATH", default=None,
                        help="write per-shard state snapshots here at "
                             "shutdown (atomic)")
    daemon.add_argument("--wal-dir", metavar="DIR", default=None,
                        help="per-shard write-ahead logs under this "
                             "directory: crashed shards replay back to "
                             "byte-identical state (default: no WAL)")
    daemon.add_argument("--snapshot-interval-blocks", type=int,
                        default=DEFAULT_SNAPSHOT_INTERVAL_BLOCKS,
                        metavar="N",
                        help="blocks scored between WAL state checkpoints "
                             f"(default {DEFAULT_SNAPSHOT_INTERVAL_BLOCKS})")
    daemon.add_argument("--no-wal", action="store_true",
                        help="serve without a WAL even if --wal-dir is set "
                             "(restores the pre-crash-safety fast path)")
    daemon.add_argument("--dead-letter", metavar="PATH", default=None,
                        help="park undeliverable alerts in this JSONL file "
                             "(reprocess with 'repro-serve recover')")
    daemon.add_argument("--learn", action="store_true",
                        help="attach the drift-detection plane: ingest "
                             "feeds per-attribute baselines and drift "
                             "alarms surface in /status and the flight "
                             "recorder (see docs/learning.md)")

    recover = commands.add_parser(
        "recover", help="inspect/replay WAL directories offline and "
                        "re-deliver dead-letter alerts")
    add_common(recover, require_bundle=False)
    recover.add_argument("--wal-dir", metavar="DIR", default=None,
                         help="daemon WAL root (shard-*/ subdirectories); "
                              "replays each shard offline and prints a "
                              "recovery summary (needs --bundle)")
    recover.add_argument("--dead-letter", metavar="PATH", default=None,
                         help="dead-letter JSONL to re-deliver; the file "
                              "is rewritten to hold only what still fails")
    recover.add_argument("--alert-sink", action="append", default=[],
                         metavar="SPEC",
                         help="destination(s) for --dead-letter redelivery, "
                              "same grammar as the daemon flag")

    bench = commands.add_parser(
        "bench", help="measure bundle load latency and scoring throughput")
    add_common(bench)
    bench.add_argument("--simulate", type=int, default=200,
                       metavar="N_DRIVES",
                       help="synthetic fleet size for the throughput "
                            "stream (default 200)")
    bench.add_argument("--seed", type=int, default=42,
                       help="seed for the synthetic fleet")
    bench.add_argument("--rounds", type=int, default=3,
                       help="timing rounds (best-of; default 3)")
    return parser


def read_sample_stream(handle: IO[str], attributes: tuple[str, ...],
                       ) -> Iterator[tuple[str, int, np.ndarray]]:
    """Parse a ``serial,hour,<attributes>`` CSV stream into samples.

    The header must name exactly the bundle's attribute columns, in
    order — a scorer fed columns in another drive's convention would
    silently produce garbage stages, so the mismatch is a hard
    :class:`~repro.errors.ServeError` instead.
    """
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise ServeError("sample stream is empty (no header row)") from None
    expected = ["serial", "hour", *attributes]
    if [column.strip() for column in header] != expected:
        raise ServeError(
            f"sample stream header {header!r} does not match the "
            f"bundle's feature space {expected!r}"
        )
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(expected):
            raise ServeError(
                f"sample stream line {line_number}: {len(row)} fields, "
                f"expected {len(expected)}"
            )
        try:
            hour = int(row[1])
            values = np.asarray([float(v) for v in row[2:]],
                                dtype=np.float64)
        except ValueError as error:
            raise ServeError(
                f"sample stream line {line_number}: {error}") from error
        yield row[0], hour, values


def _write_verdicts(verdicts: list[MonitorVerdict], sink: IO[str], *,
                    alerts_only: bool) -> int:
    """Emit verdicts as JSONL; returns the number of lines written."""
    written = 0
    for verdict in verdicts:
        if alerts_only and not verdict.alerting:
            continue
        sink.write(verdict.to_json_line() + "\n")
        written += 1
    return written


def run_score(args: argparse.Namespace,
              observer: PipelineObserver) -> int:
    """``score``: CSV sample stream in, JSONL verdict stream out."""
    bundle = load_bundle(args.bundle, observer=observer)
    scorer = StreamScorer(bundle, observer=observer)

    def score_stream(source: IO[str], sink: IO[str]) -> int:
        lines = 0
        batch: list[tuple[str, int, np.ndarray]] = []
        with observer.span("score-stream"):
            for sample in read_sample_stream(source, bundle.attributes):
                batch.append(sample)
                if len(batch) >= STREAM_BATCH_SIZE:
                    lines += _write_verdicts(scorer.push_many(batch), sink,
                                             alerts_only=args.alerts_only)
                    batch.clear()
            lines += _write_verdicts(scorer.push_many(batch), sink,
                                     alerts_only=args.alerts_only)
        return lines

    source = sys.stdin if args.input == "-" else open(args.input, newline="")
    try:
        if args.output:
            with open(args.output, "w") as sink:
                lines = score_stream(source, sink)
        else:
            lines = score_stream(source, sys.stdout)
    finally:
        if source is not sys.stdin:
            source.close()
    print(f"scored {scorer.samples_scored} samples from "
          f"{scorer.drives_tracked} drives: {scorer.alerts_emitted} "
          f"alerts, {lines} verdicts written", file=sys.stderr)
    return 0


def run_watch(args: argparse.Namespace,
              observer: PipelineObserver) -> int:
    """``watch``: score a stream while the telemetry plane answers HTTP."""
    bundle = load_bundle(args.bundle, observer=observer)
    recorder = FlightRecorder(capacity=args.recorder_capacity)
    service = WatchService(bundle, observer=observer, recorder=recorder,
                           host=args.host, port=args.port)
    batch_size = max(1, args.batch_size)

    def watch_stream(source: IO[str], sink: IO[str]) -> int:
        lines = 0
        batch: list[tuple[str, int, np.ndarray]] = []

        def flush() -> int:
            verdicts = service.score_batch(batch)
            batch.clear()
            if args.throttle > 0:
                time.sleep(args.throttle)
            return _write_verdicts(verdicts, sink,
                                   alerts_only=args.alerts_only)

        with observer.span("watch-stream"):
            for sample in read_sample_stream(source, bundle.attributes):
                batch.append(sample)
                if len(batch) >= batch_size:
                    lines += flush()
            lines += flush()
        return lines

    source = sys.stdin if args.input == "-" else open(args.input, newline="")
    snapshotter = (PeriodicSnapshotWriter(service.registry, args.snapshot,
                                          args.snapshot_interval)
                   if args.snapshot else None)
    dump_cm = (recorder.guard(args.recorder_dump) if args.recorder_dump
               else contextlib.nullcontext())
    with service:
        if args.port_file:
            service.handle.write_port_file(args.port_file)
        print(f"telemetry listening on {service.url} "
              f"(/metrics /health /status /recorder)", file=sys.stderr)
        if snapshotter is not None:
            snapshotter.start()
        try:
            with dump_cm:
                if args.output:
                    with open(args.output, "w") as sink:
                        lines = watch_stream(source, sink)
                else:
                    lines = watch_stream(source, sys.stdout)
                if args.linger > 0:
                    time.sleep(args.linger)
        finally:
            if source is not sys.stdin:
                source.close()
            if snapshotter is not None:
                snapshotter.stop()
    if args.recorder_dump:
        recorder.dump_jsonl(args.recorder_dump)
        print(f"flight recorder dumped to {args.recorder_dump}",
              file=sys.stderr)
    scorer = service.scorer
    print(f"watched {scorer.samples_scored} samples from "
          f"{scorer.drives_tracked} drives: {scorer.alerts_emitted} "
          f"alerts, {lines} verdicts written", file=sys.stderr)
    return 0


def run_daemon(args: argparse.Namespace,
               observer: PipelineObserver) -> int:
    """``daemon``: serve sharded scoring over HTTP until drained.

    Blocks in :meth:`ServingDaemon.serve_forever` until SIGTERM/SIGINT
    (installed only when running on the main thread) or ``POST /drain``
    asks for a graceful stop; every admitted batch finishes scoring and
    the optional ``--final-snapshot`` document is written before exit.
    """
    bundle = load_bundle(args.bundle, observer=observer)
    sinks = [parse_sink_spec(spec) for spec in args.alert_sink]
    recorder = FlightRecorder(capacity=args.recorder_capacity)
    daemon = ServingDaemon(
        bundle, n_shards=args.shards, backend=args.backend,
        queue_capacity=args.queue_capacity, sinks=sinks,
        observer=observer, recorder=recorder,
        host=args.host, port=args.port,
        retry_after_s=args.retry_after,
        final_snapshot=args.final_snapshot,
        wal_dir=None if args.no_wal else args.wal_dir,
        snapshot_interval_blocks=args.snapshot_interval_blocks,
        dead_letter=args.dead_letter,
        learn=args.learn,
    )
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum,
                          lambda _signum, _frame: daemon.request_stop())
    daemon.start()
    if args.port_file:
        daemon.handle.write_port_file(args.port_file)
    print(f"serving daemon on {daemon.url} "
          f"({args.shards} shard(s), {args.backend} backend; "
          f"POST /ingest, /promote, /drain; "
          f"GET /metrics /health /status /recorder)",
          file=sys.stderr)
    daemon.serve_forever()
    print(f"daemon drained: {daemon.samples_accepted} samples accepted, "
          f"{daemon.alerts_emitted} alerts emitted", file=sys.stderr)
    return 0


def run_recover(args: argparse.Namespace,
                observer: PipelineObserver) -> int:
    """``recover``: offline WAL replay and dead-letter redelivery.

    With ``--wal-dir``, every ``shard-*`` subdirectory is replayed
    through a fresh scorer exactly the way a respawned shard worker
    would (last snapshot, then the WAL suffix) and the resulting
    counters are printed as a JSON summary — the kill -9 drill's
    verification step, and a way to audit what state a restarted
    daemon will resume with.  With ``--dead-letter``, the parked
    alerts are re-delivered through each ``--alert-sink`` and the file
    is rewritten to hold only what still fails.
    """
    if args.wal_dir is None and args.dead_letter is None:
        raise ServeError(
            "recover needs --wal-dir and/or --dead-letter; nothing to do")
    summary: dict[str, object] = {}
    if args.wal_dir is not None:
        if not args.bundle:
            raise ServeError(
                "--wal-dir replay needs --bundle (the WAL refuses to "
                "replay through a different model)")
        bundle = load_bundle(args.bundle, observer=observer)
        bundle_sha = content_hash(bundle.to_payload())
        root = Path(args.wal_dir)
        shard_dirs = sorted(root.glob("shard-*"))
        if not shard_dirs:
            raise ServeError(
                f"no shard-* WAL directories under {root}")
        shards = []
        for shard_dir in shard_dirs:
            scorer = StreamScorer(bundle, observer=observer)
            with ShardWal(shard_dir, bundle_sha256=bundle_sha,
                          generation=bundle.generation) as wal:
                recovery = wal.open()
                if recovery.snapshot is not None:
                    scorer.restore_state(recovery.snapshot)
                for record in recovery.records:
                    _block_id, serials, hours, matrix = decode_block(
                        record.payload)
                    scorer.score_block(serials, hours, matrix)
                shards.append({
                    "directory": str(shard_dir),
                    "snapshot_seq": recovery.snapshot_seq,
                    "replayed_blocks": recovery.replayed_blocks,
                    "last_seq": wal.last_seq,
                    "samples_scored": scorer.samples_scored,
                    "alerts_emitted": scorer.alerts_emitted,
                    "drives_tracked": scorer.drives_tracked,
                })
        summary["wal"] = {"dir": str(root), "shards": shards}
    if args.dead_letter is not None:
        if not args.alert_sink:
            raise ServeError(
                "--dead-letter redelivery needs at least one --alert-sink")
        delivered = 0
        remaining = 0
        for spec in args.alert_sink:
            sink = parse_sink_spec(spec)
            try:
                sent, remaining = reprocess_dead_letter(args.dead_letter,
                                                        sink)
                delivered += sent
            finally:
                sink.close()
        summary["dead_letter"] = {
            "path": str(args.dead_letter),
            "delivered": delivered,
            "remaining": remaining,
        }
    print(canonical_json_dumps(summary), end="")
    return 0


def run_replay(args: argparse.Namespace,
               observer: PipelineObserver) -> int:
    """``replay``: full-dataset scoring at maximum throughput."""
    bundle = load_bundle(args.bundle, observer=observer)
    if args.simulate is not None:
        dataset = simulate_fleet(FleetConfig(n_drives=args.simulate,
                                             seed=args.seed)).dataset
    else:
        dataset = load_csv(args.csv, observer=observer)
    profiles = dataset.profiles

    start = time.perf_counter()
    per_profile = replay_fleet(bundle, profiles, n_jobs=args.jobs,
                               observer=observer)
    elapsed = time.perf_counter() - start

    n_samples = sum(len(verdicts) for verdicts in per_profile)
    n_alerts = sum(1 for verdicts in per_profile
                   for verdict in verdicts if verdict.alerting)
    if args.output:
        with open(args.output, "w") as sink:
            written = sum(
                _write_verdicts(verdicts, sink,
                                alerts_only=args.alerts_only)
                for verdicts in per_profile
            )
        print(f"{written} verdicts written to {args.output}")
    throughput = n_samples / elapsed if elapsed > 0 else float("inf")
    print(f"replayed {n_samples} samples from {len(profiles)} drives "
          f"in {elapsed:.2f}s ({throughput:,.0f} samples/s, "
          f"{n_alerts} alerts, jobs={args.jobs})")
    return 0


def run_bench(args: argparse.Namespace,
              observer: PipelineObserver) -> int:
    """``bench``: JSON latency/throughput summary on a synthetic stream."""
    rounds = max(1, args.rounds)

    load_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        bundle = load_bundle(args.bundle, observer=observer)
        load_times.append(time.perf_counter() - start)

    dataset = simulate_fleet(FleetConfig(n_drives=args.simulate,
                                         seed=args.seed)).dataset
    samples = [
        (profile.serial, int(hour), row)
        for profile in dataset.profiles
        for hour, row in zip(profile.hours, profile.matrix)
    ]

    batched_times = []
    for _ in range(rounds):
        scorer = StreamScorer(bundle)
        start = time.perf_counter()
        scorer.push_many(samples)
        batched_times.append(time.perf_counter() - start)

    single_times = []
    for _ in range(rounds):
        scorer = StreamScorer(bundle)
        start = time.perf_counter()
        for serial, hour, record in samples:
            scorer.push(serial, hour, record)
        single_times.append(time.perf_counter() - start)

    batched_s = min(batched_times)
    single_s = min(single_times)
    payload = {
        "bundle": str(Path(args.bundle)),
        "rounds": rounds,
        "stream": {
            "n_drives": len(dataset.profiles),
            "n_samples": len(samples),
            "seed": args.seed,
        },
        "bundle_load": {
            "best_s": min(load_times),
            "mean_s": sum(load_times) / len(load_times),
        },
        "throughput": {
            "push_many_s": batched_s,
            "push_many_samples_per_s": len(samples) / batched_s,
            "push_s": single_s,
            "push_samples_per_s": len(samples) / single_s,
            "speedup": single_s / batched_s,
        },
    }
    print(canonical_json_dumps(payload), end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: any library or I/O failure exits 2 with one line."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def run(args: argparse.Namespace) -> int:
    """Dispatch one parsed subcommand (telemetry configured first)."""
    obs_logging.configure(
        level=obs_logging.verbosity_to_level(args.verbose),
        json_mode=args.log_json,
    )
    collect_telemetry = bool(args.verbose or args.log_json
                             or args.trace or args.metrics)
    observer = TelemetryObserver() if collect_telemetry else NULL_OBSERVER
    if args.command in ("watch", "daemon") and observer is NULL_OBSERVER:
        # These surfaces *are* telemetry: /metrics needs a registry
        # behind the observer whatever the logging flags say.
        observer = TelemetryObserver()

    handlers = {"score": run_score, "replay": run_replay,
                "watch": run_watch, "daemon": run_daemon,
                "bench": run_bench, "recover": run_recover}
    status = handlers[args.command](args, observer)

    if args.trace:
        observer.tracer.save_json(args.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.metrics:
        Path(args.metrics).write_text(observer.metrics.to_json())
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
