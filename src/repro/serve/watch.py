"""Watch mode: streaming scoring with a live telemetry plane attached.

``score`` and ``replay`` are batch verbs — they run, print, exit.  A
scorer that *stays up* needs to answer for itself while running, and
:class:`WatchService` is that wrapper: one
:class:`~repro.serve.scorer.StreamScorer`, one
:class:`~repro.obs.recorder.FlightRecorder` and one
:class:`~repro.obs.http.TelemetryHTTPServer` composed so that

* every scored batch lands in the observer's metrics registry (scraped
  live at ``/metrics`` in Prometheus text format);
* ``/health`` reports the serving bundle's content hash and schema
  version, so an operator can tell *which* model answered;
* ``/status`` reports fleet gauges (drives tracked, samples scored,
  alert rate) plus the flight recorder's recent tail;
* every WATCH/CRITICAL verdict is recorded in the flight recorder, so
  "what happened just now?" survives even when no scraper was watching.

Telemetry never feeds back into scoring: verdicts from a watched stream
are byte-identical to an offline replay of the same samples.  The
``repro-serve watch`` subcommand (:mod:`repro.serve.cli`) drives this
service from the shell.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ServeError
from repro.obs.http import TelemetryHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import PipelineObserver, TelemetryObserver
from repro.obs.recorder import FlightRecorder
from repro.serve.bundle import BUNDLE_SCHEMA_VERSION, ModelBundle, content_hash
from repro.serve.scorer import MonitorVerdict, Sample, StreamScorer

#: Recorder events shown inline in the ``/status`` payload; the full
#: ring stays available at ``/recorder``.
DEFAULT_STATUS_TAIL = 20


class WatchService:
    """A streaming scorer with its telemetry surfaces wired together.

    Parameters
    ----------
    bundle:
        The model bundle to score with; its content hash and schema
        version become the ``/health`` identity.
    observer:
        Telemetry sink; must expose a ``metrics``
        :class:`~repro.obs.metrics.MetricsRegistry` (the ``/metrics``
        source).  Defaults to a fresh
        :class:`~repro.obs.observer.TelemetryObserver`.
    recorder:
        Flight recorder for alert/lifecycle events (fresh default ring
        when omitted).
    host / port:
        HTTP bind address; ``port=0`` picks an ephemeral port, read
        back from :attr:`port` once started.
    status_tail:
        Recorder events embedded in each ``/status`` payload.

    Use as a context manager: entering starts the HTTP server and
    records a lifecycle event; exiting stops it.  Scoring happens by
    calling :meth:`score_batch` from the caller's own loop — the
    service never owns a thread of its own beyond the HTTP server's.
    """

    def __init__(self, bundle: ModelBundle, *,
                 observer: PipelineObserver | None = None,
                 recorder: FlightRecorder | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 status_tail: int = DEFAULT_STATUS_TAIL) -> None:
        self._observer = (observer if observer is not None
                          else TelemetryObserver())
        registry = getattr(self._observer, "metrics", None)
        if not isinstance(registry, MetricsRegistry):
            raise ServeError(
                "watch service needs an observer with a metrics registry "
                f"(got {type(self._observer).__name__}); pass a "
                "TelemetryObserver"
            )
        if status_tail < 0:
            raise ServeError(
                f"status_tail must be >= 0, got {status_tail}")
        self._registry = registry
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self._scorer = StreamScorer(bundle, observer=self._observer)
        self._bundle_sha256 = content_hash(bundle.to_payload())
        self._status_tail = status_tail
        self._server = TelemetryHTTPServer(
            registry,
            health=self.health_payload,
            status=self.status_payload,
            recorder=self.recorder,
            host=host, port=port,
        )

    # -- scoring ----------------------------------------------------------

    def score_batch(self, samples: Iterable[Sample]) -> list[MonitorVerdict]:
        """Score one batch and record its alerting verdicts.

        Returns exactly :meth:`StreamScorer.push_many`'s verdicts —
        the recorder and metrics are observers, never participants, so
        a watched stream stays byte-identical to offline replay.
        """
        verdicts = self._scorer.push_many(samples)
        for verdict in verdicts:
            if verdict.alerting:
                self.recorder.record(
                    "alert",
                    f"drive {verdict.serial} {verdict.level} "
                    f"at hour {verdict.hour}",
                    serial=verdict.serial,
                    hour=verdict.hour,
                    level=verdict.level,
                    stage=verdict.stage,
                    likely_type=verdict.likely_type,
                )
        return verdicts

    # -- payloads ---------------------------------------------------------

    def health_payload(self) -> dict[str, Any]:
        """The ``/health`` body: liveness plus serving-model identity."""
        return {
            "status": "ok",
            "bundle_sha256": self._bundle_sha256,
            "schema_version": BUNDLE_SCHEMA_VERSION,
        }

    def status_payload(self) -> dict[str, Any]:
        """The ``/status`` body: fleet gauges and the recent event tail."""
        samples = self._scorer.samples_scored
        alerts = self._scorer.alerts_emitted
        return {
            "drives_tracked": self._scorer.drives_tracked,
            "samples_scored": samples,
            "alerts_emitted": alerts,
            "alert_rate": (alerts / samples) if samples else 0.0,
            "flight_recorder": {
                "total_recorded": self.recorder.total_recorded,
                "dropped": self.recorder.dropped,
                "tail": self.recorder.to_dicts(self._status_tail),
            },
        }

    # -- accessors --------------------------------------------------------

    @property
    def scorer(self) -> StreamScorer:
        """The underlying streaming scorer."""
        return self._scorer

    @property
    def observer(self) -> PipelineObserver:
        """The observer every scored batch reports through."""
        return self._observer

    @property
    def registry(self) -> MetricsRegistry:
        """The registry served at ``/metrics``."""
        return self._registry

    @property
    def handle(self):
        """The bound address as an :class:`~repro.obs.http.ServerHandle`."""
        return self._server.handle

    @property
    def host(self) -> str:
        """Bound HTTP host."""
        return self._server.host

    @property
    def port(self) -> int:
        """Bound HTTP port (the ephemeral pick when constructed with 0)."""
        return self._server.port

    @property
    def url(self) -> str:
        """Base URL of the telemetry endpoints."""
        return self._server.url

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "WatchService":
        """Start the HTTP surface and record the lifecycle event."""
        self._server.start()
        self.recorder.record("lifecycle", "watch service started",
                             url=self.url,
                             bundle_sha256=self._bundle_sha256)
        return self

    def stop(self) -> None:
        """Record the lifecycle event and stop the HTTP surface."""
        self.recorder.record("lifecycle", "watch service stopped",
                             samples_scored=self._scorer.samples_scored,
                             alerts_emitted=self._scorer.alerts_emitted)
        self._server.stop()

    def __enter__(self) -> "WatchService":
        return self.start()

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.stop()
        return False
