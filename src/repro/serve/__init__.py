"""Serving layer: versioned model artifacts and streaming scoring.

``repro.serve`` turns the pipeline's in-process models into a deployable
service: :func:`build_bundle` freezes them into a versioned, hashed
:class:`ModelBundle`; :func:`save_bundle` / :func:`load_bundle`
round-trip the artifact on disk with typed corruption/staleness
detection; :class:`StreamScorer` consumes live SMART samples against a
loaded bundle, byte-identical to offline replay; :class:`WatchService`
(:mod:`repro.serve.watch`) keeps a scorer up behind live ``/metrics`` /
``/health`` / ``/status`` HTTP surfaces with a flight recorder of
recent alerts; :class:`ServingDaemon` (:mod:`repro.serve.daemon`) is
the fleet-scale always-on form — per-drive state sharded by consistent
hash across workers (:mod:`repro.serve.shard`), HTTP ingestion with
explicit backpressure, and pluggable alert sinks
(:mod:`repro.serve.sinks`).  Crash safety is layered in by
:mod:`repro.serve.wal` (per-shard write-ahead logs with
snapshot-bounded replay), a supervisor inside :class:`ShardSet` that
respawns dead workers back to byte-identical state, and
:class:`DeliveryPipeline` retry/dead-letter delivery for alerts.  The
``repro-serve`` CLI (:mod:`repro.serve.cli`) fronts all of it from the
shell, including offline ``recover`` tooling.
"""

from repro.serve.bundle import (
    BUNDLE_SCHEMA_VERSION,
    GroupArtifact,
    ModelBundle,
    build_bundle,
    bundle_from_document,
    content_hash,
    load_bundle,
    save_bundle,
    stamp_lineage,
)
from repro.serve.daemon import ServingDaemon
from repro.serve.scorer import (
    MonitorVerdict,
    StreamScorer,
    replay_fleet,
)
from repro.serve.shard import HashRing, ShardSet, WalSettings
from repro.serve.sinks import (
    AlertSink,
    CallbackAlertSink,
    DeadLetterWriter,
    DeliveryPipeline,
    DeliveryPolicy,
    JsonlAlertSink,
    WebhookAlertSink,
    parse_sink_spec,
    read_dead_letter,
    reprocess_dead_letter,
)
from repro.serve.wal import ShardWal, WalRecord, WalRecovery
from repro.serve.watch import WatchService

__all__ = [
    "AlertSink",
    "BUNDLE_SCHEMA_VERSION",
    "CallbackAlertSink",
    "DeadLetterWriter",
    "DeliveryPipeline",
    "DeliveryPolicy",
    "GroupArtifact",
    "HashRing",
    "JsonlAlertSink",
    "ModelBundle",
    "MonitorVerdict",
    "ServingDaemon",
    "ShardSet",
    "ShardWal",
    "StreamScorer",
    "WalRecord",
    "WalRecovery",
    "WalSettings",
    "WatchService",
    "WebhookAlertSink",
    "build_bundle",
    "bundle_from_document",
    "content_hash",
    "load_bundle",
    "parse_sink_spec",
    "read_dead_letter",
    "replay_fleet",
    "reprocess_dead_letter",
    "save_bundle",
    "stamp_lineage",
]
