"""Serving layer: versioned model artifacts and streaming scoring.

``repro.serve`` turns the pipeline's in-process models into a deployable
service: :func:`build_bundle` freezes them into a versioned, hashed
:class:`ModelBundle`; :func:`save_bundle` / :func:`load_bundle`
round-trip the artifact on disk with typed corruption/staleness
detection; :class:`StreamScorer` consumes live SMART samples against a
loaded bundle, byte-identical to offline replay; :class:`WatchService`
(:mod:`repro.serve.watch`) keeps a scorer up behind live ``/metrics`` /
``/health`` / ``/status`` HTTP surfaces with a flight recorder of
recent alerts; :class:`ServingDaemon` (:mod:`repro.serve.daemon`) is
the fleet-scale always-on form — per-drive state sharded by consistent
hash across workers (:mod:`repro.serve.shard`), HTTP ingestion with
explicit backpressure, and pluggable alert sinks
(:mod:`repro.serve.sinks`).  The ``repro-serve`` CLI
(:mod:`repro.serve.cli`) fronts all of it from the shell.
"""

from repro.serve.bundle import (
    BUNDLE_SCHEMA_VERSION,
    GroupArtifact,
    ModelBundle,
    build_bundle,
    content_hash,
    load_bundle,
    save_bundle,
)
from repro.serve.daemon import ServingDaemon
from repro.serve.scorer import (
    MonitorVerdict,
    StreamScorer,
    replay_fleet,
)
from repro.serve.shard import HashRing, ShardSet
from repro.serve.sinks import (
    AlertSink,
    CallbackAlertSink,
    JsonlAlertSink,
    WebhookAlertSink,
    parse_sink_spec,
)
from repro.serve.watch import WatchService

__all__ = [
    "AlertSink",
    "BUNDLE_SCHEMA_VERSION",
    "CallbackAlertSink",
    "GroupArtifact",
    "HashRing",
    "JsonlAlertSink",
    "ModelBundle",
    "MonitorVerdict",
    "ServingDaemon",
    "ShardSet",
    "StreamScorer",
    "WatchService",
    "WebhookAlertSink",
    "build_bundle",
    "content_hash",
    "load_bundle",
    "parse_sink_spec",
    "replay_fleet",
    "save_bundle",
]
