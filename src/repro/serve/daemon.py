"""The fleet-scale serving daemon: sharded scoring behind HTTP.

:class:`ServingDaemon` is the always-on composition of the serving
stack: a :class:`~repro.serve.shard.ShardSet` (keyed per-drive state,
consistent-hash placement, bounded queues), the telemetry plane of
:mod:`repro.obs.http` (``/metrics``, ``/health``, ``/status``,
``/recorder``), an HTTP ingestion endpoint, and pluggable
:mod:`~repro.serve.sinks` for alert delivery.

``POST /ingest`` accepts either a JSON document::

    {"samples": [["serial", hour, [v1, v2, ...]], ...]}

or JSONL (``Content-Type: application/jsonl`` or ``?format=jsonl``),
one object per line::

    {"serial": "...", "hour": 123, "values": [v1, v2, ...]}

The default reply is a JSON summary ``{"accepted": n, "alerts": m}``;
``?verdicts=all`` (or ``=alerts``) returns the canonical verdict JSON
lines instead — byte-identical to offline ``repro-serve score`` output
for the same samples, for any shard count.  A malformed body answers
400; a saturated shard answers **429 with a ``Retry-After`` header**,
and the rejected batch is never partially scored (all-or-nothing
admission, see :mod:`repro.serve.shard`).

``POST /drain`` asks the daemon to stop: in-flight batches finish,
every shard emits its state snapshot, the optional final-snapshot file
is written atomically, and :meth:`serve_forever` returns.  The CLI
wires SIGTERM/SIGINT to the same path.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.serialize import canonical_json_dumps
from repro.errors import (BackpressureError, BundleError, ServeError,
                          ShardRecoveringError)
from repro.ioutil import atomic_write_text
from repro.obs.http import HttpReply, TelemetryHTTPServer, ServerHandle
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import PipelineObserver, TelemetryObserver
from repro.obs.recorder import FlightRecorder
from repro.serve.bundle import (BUNDLE_SCHEMA_VERSION, ModelBundle,
                                bundle_from_document, content_hash)
from repro.serve.scorer import MonitorVerdict, VerdictBlock
from repro.serve.shard import (DEFAULT_QUEUE_CAPACITY,
                               DEFAULT_SNAPSHOT_INTERVAL_BLOCKS, ShardSet)
from repro.serve.sinks import (AlertSink, DeadLetterWriter, DeliveryPipeline,
                               DeliveryPolicy)

#: Recorder events shown inline in the ``/status`` payload.
DEFAULT_STATUS_TAIL = 20

#: ``Retry-After`` seconds suggested on 429 replies by default.
DEFAULT_RETRY_AFTER_S = 1.0


def _columns_from(serials: list[str], hours: list[int],
                  flat: list[float], width: int) -> tuple[
                      list[str], list[int], np.ndarray]:
    """Shape flat parsed values into the columnar ``(serials, hours, matrix)``.

    One reshape instead of one list object per sample — the parsers
    append every value to a single flat buffer and this helper turns it
    into the 2-D record matrix the shard plane consumes.
    """
    matrix = np.asarray(flat, dtype=np.float64).reshape(len(serials), width)
    return serials, hours, matrix


def _parse_json_batch(body: bytes) -> tuple[list[str], list[int], np.ndarray]:
    """Decode the JSON document ingest form straight into column arrays."""
    document = json.loads(body.decode("utf-8"))
    if not isinstance(document, dict) or "samples" not in document:
        raise ServeError(
            'expected {"samples": [[serial, hour, values], ...]}')
    serials: list[str] = []
    hours: list[int] = []
    flat: list[float] = []
    width = -1
    for entry in document["samples"]:
        serial, hour, values = entry
        if width < 0:
            width = len(values)
        elif len(values) != width:
            raise ServeError(
                f"sample {len(serials)}: {len(values)} values where "
                f"earlier samples had {width}")
        serials.append(str(serial))
        hours.append(int(hour))
        flat.extend(float(value) for value in values)
    return _columns_from(serials, hours, flat, max(width, 0))


def _parse_jsonl_batch(body: bytes) -> tuple[list[str], list[int], np.ndarray]:
    """Decode the JSONL ingest form straight into column arrays."""
    serials: list[str] = []
    hours: list[int] = []
    flat: list[float] = []
    width = -1
    for line_number, line in enumerate(body.decode("utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        try:
            values = record["values"]
            if width < 0:
                width = len(values)
            elif len(values) != width:
                raise ServeError(
                    f"line {line_number}: {len(values)} values where "
                    f"earlier lines had {width}")
            serials.append(str(record["serial"]))
            hours.append(int(record["hour"]))
            flat.extend(float(value) for value in values)
        except (KeyError, TypeError) as error:
            raise ServeError(
                f"line {line_number}: expected keys serial/hour/values "
                f"({error})") from error
    return _columns_from(serials, hours, flat, max(width, 0))


class ServingDaemon:
    """A long-running sharded scorer with ingestion and telemetry HTTP.

    Parameters
    ----------
    bundle:
        The model bundle to serve; its content hash and schema version
        are the ``/health`` identity.
    n_shards / backend / queue_capacity / throttle_s / retry_after_s:
        Shard-plane knobs, passed to :class:`~repro.serve.shard.ShardSet`.
    sinks:
        Alert sinks notified of every WATCH/CRITICAL verdict after
        scoring.  Sink failures are counted (``alert_sink_errors``) and
        logged to the flight recorder, never propagated to the sender.
    observer:
        Telemetry sink; must expose a metrics registry (the
        ``/metrics`` source).  Defaults to a fresh
        :class:`~repro.obs.observer.TelemetryObserver`.
    recorder:
        Flight recorder for alert/lifecycle events.
    host / port:
        HTTP bind address; ``port=0`` picks an ephemeral port (read it
        from :attr:`handle`).
    status_tail:
        Recorder events embedded in each ``/status`` payload.
    final_snapshot:
        Optional path; on shutdown the daemon writes a JSON document
        with per-shard state snapshots and totals there (atomically —
        fsync, then ``os.replace``).
    wal_dir:
        Root directory for per-shard write-ahead logs; enables crash
        recovery (see :mod:`repro.serve.wal` and
        ``docs/robustness.md``).  ``None`` (the default) serves without
        a WAL — the pre-crash-safety behavior.
    snapshot_interval_blocks:
        Blocks a shard scores between WAL state checkpoints.
    dead_letter:
        JSONL path collecting alerts that exhausted sink delivery; the
        daemon never drops an alert silently when this is set.
    delivery_policy:
        Retry/backoff/circuit-breaker tuning for alert delivery
        (defaults to :class:`~repro.serve.sinks.DeliveryPolicy`).
    learn:
        Attach a :class:`~repro.learn.drift.DriftDetector` to the
        ingest path (the ``repro-serve daemon --learn`` flag): every
        admitted block also updates rolling per-attribute baselines,
        and drift alarms land in the flight recorder plus the
        ``drift_alarms`` counter.  Detection never changes a verdict.
    drift_policy:
        Optional :class:`~repro.learn.drift.DriftPolicy` overriding the
        detector's thresholds (``learn=True`` only).
    """

    def __init__(self, bundle: ModelBundle, *, n_shards: int = 1,
                 backend: str = "thread",
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 sinks: Sequence[AlertSink] = (),
                 observer: PipelineObserver | None = None,
                 recorder: FlightRecorder | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 status_tail: int = DEFAULT_STATUS_TAIL,
                 throttle_s: float = 0.0,
                 retry_after_s: float = DEFAULT_RETRY_AFTER_S,
                 final_snapshot: str | Path | None = None,
                 wal_dir: str | Path | None = None,
                 snapshot_interval_blocks: int =
                 DEFAULT_SNAPSHOT_INTERVAL_BLOCKS,
                 dead_letter: str | Path | None = None,
                 delivery_policy: DeliveryPolicy | None = None,
                 learn: bool = False,
                 drift_policy: Any = None) -> None:
        self._observer = (observer if observer is not None
                          else TelemetryObserver())
        registry = getattr(self._observer, "metrics", None)
        if not isinstance(registry, MetricsRegistry):
            raise ServeError(
                "serving daemon needs an observer with a metrics registry "
                f"(got {type(self._observer).__name__}); pass a "
                "TelemetryObserver"
            )
        self._registry = registry
        self._bundle = bundle
        self._bundle_sha256 = content_hash(bundle.to_payload())
        self._sinks = list(sinks)
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self._status_tail = status_tail
        self._retry_after_s = float(retry_after_s)
        self._final_snapshot = (Path(final_snapshot)
                                if final_snapshot is not None else None)
        self._dead_letter = (DeadLetterWriter(dead_letter)
                             if dead_letter is not None else None)
        self._pipelines = [
            DeliveryPipeline(sink, policy=delivery_policy,
                             dead_letter=self._dead_letter,
                             observer=self._observer,
                             recorder=self.recorder)
            for sink in self._sinks
        ]
        self._shards = ShardSet(
            bundle, n_shards=n_shards, backend=backend,
            queue_capacity=queue_capacity, observer=self._observer,
            throttle_s=throttle_s, retry_after_s=retry_after_s,
            wal_dir=wal_dir,
            snapshot_interval_blocks=snapshot_interval_blocks,
        )
        self._lock = threading.Lock()
        self._samples_accepted = 0
        self._alerts_emitted = 0
        self._stop_requested = threading.Event()
        self._stopped = False
        self._snapshots: list[dict[str, Any]] = []
        self._previous_bundle: ModelBundle | None = None
        self._drift = None
        if learn:
            # Imported lazily: repro.learn's refit half depends on the
            # serving package, so a top-level import would be circular.
            from repro.learn.drift import DriftDetector
            self._drift = DriftDetector(
                bundle.attributes, policy=drift_policy,
                observer=self._observer)
        self._server = TelemetryHTTPServer(
            registry,
            health=self.health_payload,
            status=self.status_payload,
            recorder=self.recorder,
            post_routes={
                "/ingest": self._handle_ingest,
                "/drain": self._handle_drain,
                "/promote": self._handle_promote,
            },
            host=host, port=port,
        )

    # -- ingestion --------------------------------------------------------

    def ingest(self, serials: Sequence[str], hours: Sequence[int],
               matrix: Iterable[Iterable[float]]) -> list[MonitorVerdict]:
        """Score one columnar batch and materialize every verdict.

        :meth:`ingest_block` plus per-sample
        :class:`~repro.serve.scorer.MonitorVerdict` objects, kept for
        library callers; the HTTP endpoint consumes the columnar block
        directly and only materializes what the reply needs.
        """
        return self.ingest_block(serials, hours, matrix).verdicts()

    def ingest_block(self, serials: Sequence[str], hours: Sequence[int],
                     matrix: Iterable[Iterable[float]],
                     block_id: str | None = None) -> VerdictBlock:
        """Score one columnar batch through the shard plane.

        The daemon's hot path: the batch stays struct-of-arrays from
        HTTP parse to shard scoring to reply accounting.  Raises
        :class:`~repro.errors.BackpressureError` when a target shard is
        saturated (nothing enqueued),
        :class:`~repro.errors.ShardRecoveringError` when one is
        replaying after a crash (also nothing enqueued), and
        :class:`~repro.errors.ServeError` on malformed batches.  Only
        the (rare) alerting rows are materialized — each fans out to
        the flight recorder and the configured sinks before this
        returns.

        ``block_id`` names the batch for exactly-once crash-safe
        retries (see :meth:`ShardSet.submit_block
        <repro.serve.shard.ShardSet.submit_block>`); HTTP clients pass
        it as ``?batch=``.
        """
        columns = np.asarray(matrix, dtype=np.float64)
        block = self._shards.submit_block(serials, hours, columns,
                                          block_id=block_id)
        with self._lock:
            self._samples_accepted += len(block)
            self._alerts_emitted += block.n_alerting
        if self._drift is not None:
            for alarm in self._drift.update(columns):
                self.recorder.record(
                    "drift", alarm.describe(),
                    attribute=alarm.attribute, alarm_kind=alarm.kind,
                    score=alarm.score, block_index=alarm.block_index)
        for row in block.alerting_rows():
            verdict = block.verdict_at(int(row))
            self.recorder.record(
                "alert",
                f"drive {verdict.serial} {verdict.level} "
                f"at hour {verdict.hour}",
                serial=verdict.serial, hour=verdict.hour,
                level=verdict.level, stage=verdict.stage,
                likely_type=verdict.likely_type,
            )
            self._emit_to_sinks(verdict)
        return block

    def _count_ingest(self, outcome: str) -> None:
        """Bump the labeled ``ingest_requests`` counter for one request."""
        self._registry.counter("ingest_requests",
                               labels={"outcome": outcome}).inc()

    def _emit_to_sinks(self, verdict: MonitorVerdict) -> None:
        """Hand one alert to every delivery pipeline (never blocks).

        Each pipeline retries, breaks the circuit, and dead-letters
        independently (see :class:`~repro.serve.sinks.DeliveryPipeline`);
        scoring never waits on a slow or failing sink.
        """
        for pipeline in self._pipelines:
            pipeline.submit(verdict)

    def _handle_ingest(self, body: bytes, query: dict[str, str]) -> HttpReply:
        """``POST /ingest``: decode, admit, score, reply.

        ``?format=jsonl`` forces the line-oriented form; otherwise the
        body is parsed as the JSON document form first and as JSONL if
        that fails (a JSONL body is never a single valid JSON document
        with a ``samples`` key, so the fallback is unambiguous).
        """
        try:
            if query.get("format") == "jsonl":
                serials, hours, rows = _parse_jsonl_batch(body)
            else:
                try:
                    serials, hours, rows = _parse_json_batch(body)
                except (ServeError, ValueError):
                    serials, hours, rows = _parse_jsonl_batch(body)
        except (ServeError, ValueError, TypeError) as error:
            self._count_ingest("bad_request")
            return HttpReply.json(400, {"error": f"malformed batch: {error}"})
        if not serials:
            self._count_ingest("ok")
            return HttpReply.json(200, {"accepted": 0, "alerts": 0})
        try:
            block = self.ingest_block(serials, hours, rows,
                                      block_id=query.get("batch"))
        except BackpressureError as error:
            self._count_ingest("backpressure")
            return HttpReply.json(
                429,
                {"error": str(error), "shard": error.shard,
                 "retry_after_s": error.retry_after_s},
                headers=(("Retry-After", f"{error.retry_after_s:g}"),),
            )
        except ShardRecoveringError as error:
            self._count_ingest("recovering")
            return HttpReply.json(
                503,
                {"error": str(error), "shard": error.shard,
                 "retry_after_s": error.retry_after_s},
                headers=(("Retry-After", f"{error.retry_after_s:g}"),),
            )
        except ServeError as error:
            self._count_ingest("bad_request")
            return HttpReply.json(400, {"error": str(error)})
        self._count_ingest("ok")
        self._observer.count("ingest_samples", len(block))
        wanted = query.get("verdicts")
        if wanted in ("all", "alerts"):
            lines = (block.to_json_lines() if wanted == "all"
                     else [block.verdict_at(int(row)).to_json_line()
                           for row in block.alerting_rows()])
            body_out = "".join(line + "\n" for line in lines).encode("utf-8")
            return HttpReply(200, body_out,
                             content_type="application/jsonl; charset=utf-8")
        return HttpReply.json(200, {"accepted": len(block),
                                    "alerts": block.n_alerting})

    def _handle_drain(self, body: bytes, query: dict[str, str]) -> HttpReply:
        """``POST /drain``: request a graceful stop, reply immediately."""
        self.request_stop()
        return HttpReply.json(202, {"status": "draining"})

    # -- promotion --------------------------------------------------------

    def promote_bundle(self, bundle: ModelBundle, *,
                       force: bool = False) -> list[dict[str, Any]]:
        """Swap the active bundle for a challenger, atomically.

        Unless ``force``, the challenger must name the current champion
        in its lineage (``parent_sha256`` equal to the serving bundle's
        content hash) — a stale challenger built against an older
        generation is refused instead of silently skipping a step in
        the chain.  The swap itself is
        :meth:`ShardSet.promote <repro.serve.shard.ShardSet.promote>`:
        a clean fence in every shard's stream, WAL-logged so recovery
        replays with the right bundle generation.  The replaced
        champion is kept for :meth:`rollback_bundle`.
        """
        new_payload = bundle.to_payload()
        new_sha = content_hash(new_payload)
        with self._lock:
            current = self._bundle
            current_sha = self._bundle_sha256
        if new_sha == current_sha:
            raise ServeError(
                "challenger is the serving bundle (identical content "
                "hash); nothing to promote")
        if not force and bundle.parent_sha256 != current_sha:
            raise ServeError(
                f"challenger lineage names parent "
                f"{bundle.parent_sha256[:12] or '<none>'}…, but the "
                f"serving champion is {current_sha[:12]}… — refit "
                f"against the live champion or pass force")
        receipts = self._shards.promote(bundle)
        with self._lock:
            self._previous_bundle = current
            self._bundle = bundle
            self._bundle_sha256 = new_sha
        self._observer.count("bundle_promotions")
        self.recorder.record(
            "lifecycle",
            f"bundle promoted to generation {bundle.generation}",
            bundle_sha256=new_sha, parent_sha256=bundle.parent_sha256,
            generation=bundle.generation, forced=force)
        return receipts

    def rollback_bundle(self) -> list[dict[str, Any]]:
        """Re-promote the bundle the last promotion replaced.

        The emergency lever of the learning loop: one call restores the
        previous champion on every shard (same fence semantics as a
        promotion).  Refuses when no promotion has happened yet.
        """
        with self._lock:
            previous = self._previous_bundle
        if previous is None:
            raise ServeError(
                "no previous bundle to roll back to (nothing was "
                "promoted on this daemon)")
        receipts = self._shards.promote(previous)
        previous_sha = content_hash(previous.to_payload())
        with self._lock:
            self._previous_bundle = self._bundle
            self._bundle = previous
            self._bundle_sha256 = previous_sha
        self._observer.count("bundle_rollbacks")
        self.recorder.record(
            "lifecycle",
            f"bundle rolled back to generation {previous.generation}",
            bundle_sha256=previous_sha, generation=previous.generation)
        return receipts

    def _handle_promote(self, body: bytes, query: dict[str, str]) -> HttpReply:
        """``POST /promote``: swap in a challenger bundle (or roll back).

        The body is a full hashed bundle artifact — the exact JSON
        :func:`~repro.serve.bundle.save_bundle` writes — verified with
        the same four gates as a disk load before any shard sees it.
        ``?rollback=1`` ignores the body and restores the previous
        champion; ``?force=1`` skips the lineage check.  Lineage and
        state conflicts answer 409, malformed artifacts 400.
        """
        if query.get("rollback") in ("1", "true"):
            try:
                receipts = self.rollback_bundle()
            except ServeError as error:
                return HttpReply.json(409, {"error": str(error)})
            return HttpReply.json(200, {
                "status": "rolled_back",
                "bundle_sha256": self._bundle_sha256,
                "generation": self._bundle.generation,
                "shards": len(receipts),
            })
        try:
            payload = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            return HttpReply.json(
                400, {"error": f"malformed bundle artifact: {error}"})
        try:
            bundle = bundle_from_document(payload, source="POST /promote")
        except BundleError as error:
            return HttpReply.json(400, {"error": str(error)})
        try:
            receipts = self.promote_bundle(
                bundle, force=query.get("force") in ("1", "true"))
        except ServeError as error:
            return HttpReply.json(409, {"error": str(error)})
        return HttpReply.json(200, {
            "status": "promoted",
            "bundle_sha256": self._bundle_sha256,
            "generation": self._bundle.generation,
            "shards": len(receipts),
        })

    # -- payloads ---------------------------------------------------------

    def health_payload(self) -> dict[str, Any]:
        """The ``/health`` body: liveness plus serving-model identity.

        ``status`` is ``ok`` (HTTP 200), ``degraded`` (503 — at least
        one shard is replaying after a crash; other shards' drives
        still ingest), or ``draining`` (503 — shutdown in progress).
        The per-shard breakdown tells an operator *which* shard.
        """
        shard_status = self._shards.shard_status()
        if self._stop_requested.is_set():
            status = "draining"
        elif all(state == "serving" for state in shard_status):
            status = "ok"
        else:
            status = "degraded"
        return {
            "status": status,
            "bundle_sha256": self._bundle_sha256,
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "generation": self._bundle.generation,
            "shards": shard_status,
            "wal": self._shards.wal_enabled,
            "learn": self._drift is not None,
        }

    def status_payload(self) -> dict[str, Any]:
        """The ``/status`` body: shard plane, sink list, recorder tail."""
        with self._lock:
            samples = self._samples_accepted
            alerts = self._alerts_emitted
        return {
            "n_shards": self._shards.n_shards,
            "backend": self._shards.backend,
            "queue_capacity": self._shards.queue_capacity,
            "inflight": self._shards.inflight(),
            "drives_tracked": self._shards.drives_tracked(),
            "samples_accepted": samples,
            "alerts_emitted": alerts,
            "alert_rate": (alerts / samples) if samples else 0.0,
            "sinks": [sink.describe() for sink in self._sinks],
            "draining": self._stop_requested.is_set(),
            "shard_status": self._shards.shard_status(),
            "shard_restarts": self._shards.shard_restarts(),
            "wal": {
                "enabled": self._shards.wal_enabled,
                "dir": (str(self._shards.wal_dir)
                        if self._shards.wal_dir is not None else None),
            },
            "dead_letter": (str(self._dead_letter.path)
                            if self._dead_letter is not None else None),
            "bundle": {
                "sha256": self._bundle_sha256,
                "generation": self._bundle.generation,
                "parent_sha256": self._bundle.parent_sha256,
                "previous": (content_hash(self._previous_bundle.to_payload())
                             if self._previous_bundle is not None else None),
            },
            "learn": (self._drift.describe()
                      if self._drift is not None else None),
            "flight_recorder": {
                "total_recorded": self.recorder.total_recorded,
                "dropped": self.recorder.dropped,
                "tail": self.recorder.to_dicts(self._status_tail),
            },
        }

    # -- accessors --------------------------------------------------------

    @property
    def handle(self) -> ServerHandle:
        """The bound HTTP address (host, port, url, port-file writer)."""
        return self._server.handle

    @property
    def url(self) -> str:
        """Base URL of the daemon's endpoints."""
        return self._server.handle.url

    @property
    def observer(self) -> PipelineObserver:
        """The telemetry sink every scored batch reports through."""
        return self._observer

    @property
    def registry(self) -> MetricsRegistry:
        """The registry served at ``/metrics``."""
        return self._registry

    @property
    def shards(self) -> ShardSet:
        """The shard plane (placement, capacities, inflight counts)."""
        return self._shards

    @property
    def samples_accepted(self) -> int:
        """Samples admitted and scored since start."""
        with self._lock:
            return self._samples_accepted

    @property
    def alerts_emitted(self) -> int:
        """Verdicts above HEALTHY since start."""
        with self._lock:
            return self._alerts_emitted

    @property
    def final_snapshots(self) -> list[dict[str, Any]]:
        """Per-shard state snapshots collected at shutdown (post-stop)."""
        return list(self._snapshots)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ServingDaemon":
        """Start the HTTP surface (idempotent); returns self."""
        self._server.start()
        self.recorder.record(
            "lifecycle", "serving daemon started",
            url=self.url, bundle_sha256=self._bundle_sha256,
            n_shards=self._shards.n_shards, backend=self._shards.backend)
        return self

    def request_stop(self) -> None:
        """Ask the daemon to drain and stop (non-blocking, signal-safe)."""
        self._stop_requested.set()

    def serve_forever(self, poll_s: float = 0.2) -> None:
        """Block until :meth:`request_stop` (or ``POST /drain``), then stop."""
        while not self._stop_requested.wait(timeout=poll_s):
            pass
        self.stop()

    def stop(self) -> list[dict[str, Any]]:
        """Drain shards, write the final snapshot, stop HTTP (idempotent).

        Every admitted batch finishes scoring before workers exit; the
        returned (and stored) snapshots carry each shard's counters and
        keyed drive state.
        """
        with self._lock:
            if self._stopped:
                return list(self._snapshots)
            self._stopped = True
        self._stop_requested.set()
        self._snapshots = self._shards.stop()
        if self._final_snapshot is not None:
            self._write_final_snapshot(self._final_snapshot)
        for pipeline in self._pipelines:
            pipeline.close()
        if self._dead_letter is not None:
            self._dead_letter.close()
        self.recorder.record(
            "lifecycle", "serving daemon stopped",
            samples_accepted=self._samples_accepted,
            alerts_emitted=self._alerts_emitted)
        self._server.stop()
        return list(self._snapshots)

    def _write_final_snapshot(self, path: Path) -> None:
        """Atomically write the shutdown snapshot document.

        Goes through :func:`repro.ioutil.atomic_write_text` — fsync
        before ``os.replace`` — so a crash during shutdown can neither
        tear the file nor leave an empty rename visible after power
        loss.
        """
        document = {
            "bundle_sha256": self._bundle_sha256,
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "n_shards": self._shards.n_shards,
            "backend": self._shards.backend,
            "samples_accepted": self._samples_accepted,
            "alerts_emitted": self._alerts_emitted,
            "shards": self._snapshots,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, canonical_json_dumps(document) + "\n")

    def __enter__(self) -> "ServingDaemon":
        return self.start()

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.stop()
        return False
