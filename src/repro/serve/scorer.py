"""Streaming degradation scoring over a loaded model bundle.

:class:`StreamScorer` is the serving half of the paper's middleware: it
loads a :class:`~repro.serve.bundle.ModelBundle`, reconstructs the exact
training-time models, and consumes SMART samples incrementally —
``push(serial, hour, record)`` for one sample, ``push_many`` for a
batch, ``score_block`` for the columnar hot path.  Per-drive state
lives in a struct-of-arrays
:class:`~repro.core.columnar.ColumnStateStore` (one preallocated ring
buffer for the whole scorer — drives x history_hours x attributes —
with recycled rows and doubling growth), so memory stays
O(live drives x history_hours) no matter how long the stream runs and
the healthy path allocates nothing per drive.  ``score_block`` returns
a :class:`VerdictBlock`: verdict columns, not verdict objects —
:class:`MonitorVerdict` materialization is deferred to the rare
alerting rows (or to callers that explicitly ask for all of them).

The contract that makes the scorer trustworthy is *byte-identity with
offline replay*: feeding a profile's samples through ``push`` (or
``push_many``, whose batched math is element-wise identical) emits
verdicts whose canonical JSON serialization equals, byte for byte, the
verdicts of :meth:`DegradationMonitor.replay
<repro.core.monitor.DegradationMonitor.replay>` on the same profile with
the same (in-memory, never serialized) models.  The golden tests pin
this across a bundle save/load round trip.

:func:`replay_fleet` replays whole datasets at maximum throughput,
fanning profiles out over :func:`repro.parallel.map_drives` — verdicts
are per-drive independent (each drive's state keys on its serial), so
any job count returns the same verdict lists in the same order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.columnar import AlertBlock, ColumnStateStore
from repro.core.monitor import (AlertLevel, DegradationAlert,
                                DegradationMonitor, DriveStateStore)
from repro.core.serialize import canonical_json_line
from repro.core.taxonomy import FailureType
from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import (NULL_OBSERVER, PipelineObserver,
                                resolve_observer)
from repro.parallel import ParallelConfig, get_worker_observer, map_drives
from repro.serve.bundle import ModelBundle
from repro.smart.profile import HealthProfile

#: Samples are ``(serial, hour, raw_record)`` triples, raw meaning
#: unnormalized Table I attribute vectors — what a collector ships.
Sample = tuple[str, int, np.ndarray]


@dataclass(frozen=True, slots=True)
class MonitorVerdict:
    """One serialized-friendly scoring verdict for one drive-hour.

    The structured twin of :class:`~repro.core.monitor.DegradationAlert`
    — same fields, plus the per-type stage/remaining-hours breakdown
    flattened to plain types so a verdict renders to one canonical JSON
    line.  ``from_alert`` is the only constructor the scorer uses, so a
    verdict always reflects exactly one monitor alert.
    """

    serial: str
    hour: int
    level: str
    stage: float
    likely_type: str
    hours_remaining: float
    stages: dict[str, float]
    remaining: dict[str, float]

    @classmethod
    def from_alert(cls, alert: DegradationAlert) -> "MonitorVerdict":
        """Wrap one monitor alert (the sole constructor used in serving)."""
        return cls(
            serial=alert.serial,
            hour=alert.hour,
            level=alert.level.name,
            stage=alert.stage,
            likely_type=alert.likely_type.name,
            hours_remaining=alert.hours_remaining,
            stages={t.name: e.stage for t, e in alert.estimates.items()},
            remaining={t.name: e.hours_remaining
                       for t, e in alert.estimates.items()},
        )

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MonitorVerdict":
        """Rebuild a verdict from a :meth:`to_dict`-shaped mapping.

        The dead-letter reprocessing path: canonical JSON serializes
        non-finite floats as ``null``, so ``None`` maps back to ``inf``
        for the remaining-hours fields (healthy clocks) and ``nan`` for
        a stage.  Round-tripping a canonical line re-serializes to the
        identical bytes (the canonical float rounding is idempotent).
        """
        def _hours(value: Any) -> float:
            return float("inf") if value is None else float(value)

        try:
            return cls(
                serial=str(payload["serial"]),
                hour=int(payload["hour"]),
                level=str(payload["level"]),
                stage=(float("nan") if payload["stage"] is None
                       else float(payload["stage"])),
                likely_type=str(payload["likely_type"]),
                hours_remaining=_hours(payload["hours_remaining"]),
                stages={str(key): float(value)
                        for key, value in payload["stages"].items()},
                remaining={str(key): _hours(value)
                           for key, value in payload["remaining"].items()},
            )
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise ServeError(
                f"malformed verdict document: {error}") from error

    @property
    def alerting(self) -> bool:
        """Whether the verdict sits above HEALTHY."""
        return self.level != AlertLevel.HEALTHY.name

    def to_dict(self) -> dict[str, Any]:
        """Plain-type mapping, ready for canonical JSON."""
        return {
            "serial": self.serial,
            "hour": self.hour,
            "level": self.level,
            "stage": self.stage,
            "likely_type": self.likely_type,
            "hours_remaining": self.hours_remaining,
            "stages": dict(self.stages),
            "remaining": dict(self.remaining),
        }

    def to_json_line(self) -> str:
        """One canonical JSON line (sorted keys, normalized floats).

        Non-finite remaining-hours (healthy drives) serialize as
        ``null`` — JSON has no ``Infinity``.
        """
        return canonical_json_line(self.to_dict())


@dataclass(frozen=True, slots=True)
class VerdictBlock:
    """Struct-of-arrays verdicts for one scored columnar batch.

    The serving twin of :class:`~repro.core.columnar.AlertBlock`:
    verdict *columns* (stages, severity codes, likely-type indices)
    instead of verdict objects.  Summary counts and alerting-row lookups are
    array ops; :class:`MonitorVerdict` objects are built only on demand
    — per alerting row for sink delivery, or for every row when a
    caller explicitly materializes (``verdicts()`` /
    ``to_json_lines()``, whose output is byte-identical to the
    per-sample ``push`` path).
    """

    block: AlertBlock

    def __len__(self) -> int:
        return len(self.block)

    @property
    def serials(self) -> list[str]:
        """Drive serial per scored row, in input order."""
        return self.block.serials

    @property
    def n_alerting(self) -> int:
        """Rows whose severity sits above HEALTHY."""
        return self.block.n_alerting

    def alerting_rows(self) -> np.ndarray:
        """Indices of the rows above HEALTHY (usually few)."""
        return self.block.alerting_rows()

    def finite_stages(self) -> np.ndarray:
        """Likely-type stage per row, finite entries only (telemetry)."""
        return self.block.finite_stages()

    def verdict_at(self, row: int) -> MonitorVerdict:
        """Materialize one row (bit-identical to the scalar path)."""
        return MonitorVerdict.from_alert(self.block.alert_at(row))

    def verdicts(self) -> list[MonitorVerdict]:
        """Materialize every row — the compatibility slow path."""
        return [self.verdict_at(row) for row in range(len(self.block))]

    def to_json_lines(self) -> list[str]:
        """Canonical JSON line per row, byte-identical to ``push``."""
        return [self.verdict_at(row).to_json_line()
                for row in range(len(self.block))]

    @classmethod
    def empty(cls) -> "VerdictBlock":
        """A zero-row block (the verdict of an empty batch)."""
        types = tuple(FailureType)
        columns = np.empty((len(types), 0), dtype=np.float64)
        return cls(AlertBlock([], np.empty(0, dtype=np.int64),
                              columns,
                              np.empty(0, dtype=np.int64),
                              np.empty(0, dtype=np.int8), types))

    @classmethod
    def gather(cls, serials: Sequence[str], hours: Sequence[int],
               parts: Sequence[tuple[Sequence[int], "VerdictBlock"]],
               ) -> "VerdictBlock":
        """Reassemble one block from scattered sub-blocks.

        ``parts`` pairs each sub-block with the row indices (into the
        full batch) it scored; the shard plane uses this to stitch
        per-shard results back into input row order without
        materializing a single verdict object.
        """
        if not parts:
            raise ServeError("gather needs at least one sub-block")
        first = parts[0][1].block
        n = len(serials)
        n_types = first.stages.shape[0]
        stages = np.empty((n_types, n), dtype=np.float64)
        likely = np.empty(n, dtype=np.int64)
        codes = np.empty(n, dtype=np.int8)
        for rows, part in parts:
            rows = np.asarray(rows, dtype=np.int64)
            sub = part.block
            stages[:, rows] = sub.stages
            likely[rows] = sub.likely_indices
            codes[rows] = sub.level_codes
        return cls(AlertBlock(list(serials),
                              np.asarray(hours, dtype=np.int64),
                              stages, likely, codes,
                              first.types))


class StreamScorer:
    """Incremental degradation scorer over a model bundle.

    Parameters
    ----------
    bundle:
        The versioned artifact to score with (see
        :func:`~repro.serve.bundle.load_bundle`).
    observer:
        Telemetry sink: ``samples_scored`` / ``alerts_emitted``
        counters, a ``drives_tracked`` gauge, a ``verdict_stage``
        streaming histogram, and ``score-batch`` spans around each
        ``push_many``.  Telemetry never changes a verdict — scoring
        with :data:`~repro.obs.observer.NULL_OBSERVER` and with a full
        registry emits byte-identical verdict streams.
    """

    def __init__(self, bundle: ModelBundle, *,
                 observer: PipelineObserver | None = None,
                 state: DriveStateStore | ColumnStateStore | None = None,
                 ) -> None:
        self._bundle = bundle
        self._observer = resolve_observer(observer)
        self._state = state if state is not None \
            else ColumnStateStore(bundle.history_hours)
        self._monitor = DegradationMonitor(
            bundle.predictor(), bundle.normalizer(),
            watch_threshold=bundle.watch_threshold,
            critical_threshold=bundle.critical_threshold,
            history_hours=bundle.history_hours,
            state=self._state,
        )
        self._samples_scored = 0
        self._alerts_emitted = 0

    # -- streaming API ----------------------------------------------------

    def push(self, serial: str, hour: int,
             record: np.ndarray) -> MonitorVerdict:
        """Score one raw SMART sample and return its verdict."""
        record = self._check_record(serial, record)
        alert = self._monitor.observe(serial, hour, record)
        return self._account(alert)

    def push_many(self, samples: Iterable[Sample]) -> list[MonitorVerdict]:
        """Score a batch of ``(serial, hour, record)`` samples.

        Verdicts are identical to per-sample :meth:`push` calls in the
        same order — the batch path exists purely for throughput (one
        normalizer pass and one tree evaluation per failure group for
        the whole batch; see
        :meth:`~repro.core.monitor.DegradationMonitor.observe_many`).
        """
        checked = [
            (serial, int(hour), self._check_record(serial, record))
            for serial, hour, record in samples
        ]
        if not checked:
            return []
        with self._observer.span("score-batch", n_samples=len(checked)):
            alerts = self._monitor.observe_many(checked)
        return [self._account(alert) for alert in alerts]

    def push_block(self, serials: Sequence[str], hours: Sequence[int],
                   matrix: np.ndarray) -> list[MonitorVerdict]:
        """Score a columnar batch and materialize every verdict.

        Row ``i`` of ``matrix`` is the raw record for ``serials[i]`` at
        ``hours[i]``.  Verdicts equal per-sample :meth:`push` calls in
        row order.  This is :meth:`score_block` plus full
        materialization — callers that can consume the columnar
        :class:`VerdictBlock` should, and skip the per-sample objects.
        """
        return self.score_block(serials, hours, matrix).verdicts()

    def score_block(self, serials: Sequence[str], hours: Sequence[int],
                    matrix: np.ndarray) -> VerdictBlock:
        """Score a columnar batch as one set of batched array ops.

        The streaming hot path: one normalizer pass, one tree
        evaluation per failure group, one fancy-indexed ring update for
        every drive in the batch — no per-sample Python objects.  The
        returned :class:`VerdictBlock` carries verdict columns;
        materializing it reproduces :meth:`push` byte for byte (the
        golden tests pin this offline, across shard counts and over
        live HTTP ingest).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self._bundle.n_attributes:
            raise ServeError(
                f"record matrix has shape {matrix.shape}, bundle expects "
                f"(n, {self._bundle.n_attributes}) "
                f"({', '.join(self._bundle.attributes)})"
            )
        if len(serials) != matrix.shape[0] or len(hours) != matrix.shape[0]:
            raise ServeError(
                f"column lengths disagree: {len(serials)} serials, "
                f"{len(hours)} hours, {matrix.shape[0]} record rows"
            )
        if matrix.shape[0] == 0:
            return VerdictBlock(self._monitor.observe_columns([], [], matrix))
        with self._observer.span("score-batch", n_samples=matrix.shape[0]):
            block = self._monitor.observe_columns(
                list(serials), hours, matrix)
        self._account_block(block)
        return VerdictBlock(block)

    def evict_idle(self, before_hour: int) -> int:
        """Recycle state of drives last observed before ``before_hour``.

        Bounds a churning fleet's memory: evicted serials free their
        ring row (columnar store) or deque (legacy store) and start
        fresh if they reappear.  Returns the evicted count and bumps
        the ``drives_evicted`` counter.
        """
        evicted = self._state.evict_idle(int(before_hour))
        if evicted:
            self._observer.count("drives_evicted", evicted)
            self._observer.gauge("drives_tracked", self.drives_tracked)
        return evicted

    def replay_profile(self, profile: HealthProfile) -> list[MonitorVerdict]:
        """Stream one profile's samples through the scorer, in order."""
        return self.push_many(
            (profile.serial, int(hour), row)
            for hour, row in zip(profile.hours, profile.matrix)
        )

    # -- fleet state ------------------------------------------------------

    @property
    def bundle(self) -> ModelBundle:
        """The artifact this scorer was built from."""
        return self._bundle

    @property
    def state(self) -> DriveStateStore | ColumnStateStore:
        """The keyed per-drive state store (the sharding seam).

        A daemon shard snapshots or relocates a scorer's fleet state
        through this store; the scorer itself never copies it.
        """
        return self._state

    @property
    def samples_scored(self) -> int:
        """Samples consumed since construction."""
        return self._samples_scored

    @property
    def alerts_emitted(self) -> int:
        """Verdicts above HEALTHY since construction."""
        return self._alerts_emitted

    @property
    def drives_tracked(self) -> int:
        """Drives with live ring-buffer state."""
        return self._monitor.n_tracked

    def dump_state(self) -> dict[str, Any]:
        """Everything crash recovery needs to resume this scorer.

        The scorer's counters plus the state store's full
        ``dump_state()`` payload (exact float64 round-trip).  Feeding
        the dump to :meth:`restore_state` on a scorer built from the
        same bundle yields byte-identical future verdicts, counters and
        state snapshots — the WAL layer checkpoints exactly this
        document.
        """
        return {
            "schema": 1,
            "samples_scored": self._samples_scored,
            "alerts_emitted": self._alerts_emitted,
            "state": self._state.dump_state(),
        }

    def restore_state(self, payload: dict[str, Any]) -> None:
        """Rebuild counters and per-drive state from :meth:`dump_state`.

        Restores in place (the monitor keeps its reference to the same
        state store), so a recovering shard worker constructs its
        scorer normally and then applies the last snapshot before
        replaying the WAL suffix.
        """
        try:
            samples_scored = int(payload["samples_scored"])
            alerts_emitted = int(payload["alerts_emitted"])
            state = payload["state"]
        except (KeyError, TypeError, ValueError) as error:
            raise ServeError(
                f"malformed scorer state dump: {error}") from error
        self._state.restore(state)
        self._samples_scored = samples_scored
        self._alerts_emitted = alerts_emitted

    def swap_bundle(self, bundle: ModelBundle) -> None:
        """Replace the scoring models in place, keeping all drive state.

        The promotion plane's seam: verdicts are per-sample stateless
        functions of the current record (a drive's ring history never
        feeds the trees), so swapping the models between blocks changes
        *future* verdicts only — every sample scored after the swap is
        byte-identical to a fresh scorer of the new bundle fed the same
        stream.  The replacement must score the same feature space
        (attribute ordering) and keep the ring-buffer depth, because
        the live :class:`~repro.core.columnar.ColumnStateStore` is laid
        out for both.
        """
        if tuple(bundle.attributes) != tuple(self._bundle.attributes):
            raise ServeError(
                "cannot swap in a bundle trained on a different "
                f"attribute set ({', '.join(bundle.attributes)} vs "
                f"{', '.join(self._bundle.attributes)})"
            )
        if bundle.history_hours != self._bundle.history_hours:
            raise ServeError(
                f"cannot swap in a bundle with history_hours="
                f"{bundle.history_hours}; the live drive state is laid "
                f"out for {self._bundle.history_hours}"
            )
        self._bundle = bundle
        self._monitor = DegradationMonitor(
            bundle.predictor(), bundle.normalizer(),
            watch_threshold=bundle.watch_threshold,
            critical_threshold=bundle.critical_threshold,
            history_hours=bundle.history_hours,
            state=self._state,
        )

    def level_of(self, serial: str) -> AlertLevel:
        """Last severity level of a drive (HEALTHY if never seen)."""
        return self._monitor.level_of(serial)

    def drives_at(self, level: AlertLevel) -> list[str]:
        """Serials currently at exactly ``level``."""
        return self._monitor.drives_at(level)

    # -- internals --------------------------------------------------------

    def _check_record(self, serial: str, record: np.ndarray) -> np.ndarray:
        """Validate one raw record against the bundle's feature space."""
        record = np.asarray(record, dtype=np.float64).ravel()
        if record.shape[0] != self._bundle.n_attributes:
            raise ServeError(
                f"drive {serial!r}: record has {record.shape[0]} "
                f"attributes, bundle expects {self._bundle.n_attributes} "
                f"({', '.join(self._bundle.attributes)})"
            )
        return record

    def _account_block(self, block: AlertBlock) -> None:
        """Block-wise telemetry: same totals as per-verdict accounting.

        The healthy fast path (no observer) costs two integer adds; a
        real observer sees exactly the counter increments, histogram
        observations and final gauge value the scalar path emits.
        """
        n_samples = len(block)
        n_alerting = block.n_alerting
        self._samples_scored += n_samples
        self._alerts_emitted += n_alerting
        if self._observer is NULL_OBSERVER:
            return
        self._observer.count("samples_scored", n_samples)
        if n_alerting:
            self._observer.count("alerts_emitted", n_alerting)
        for stage in block.finite_stages():
            self._observer.observe("verdict_stage", float(stage))
        self._observer.gauge("drives_tracked", self.drives_tracked)

    def _account(self, alert: DegradationAlert) -> MonitorVerdict:
        """Convert an alert and update the scorer's telemetry."""
        verdict = MonitorVerdict.from_alert(alert)
        self._samples_scored += 1
        self._observer.count("samples_scored")
        if verdict.alerting:
            self._alerts_emitted += 1
            self._observer.count("alerts_emitted")
        if math.isfinite(verdict.stage):
            self._observer.observe("verdict_stage", verdict.stage)
        self._observer.gauge("drives_tracked", self.drives_tracked)
        return verdict


@dataclass(slots=True)
class _ReplayTask:
    """Picklable per-profile replay worker for the fleet fan-out.

    The task ships the bundle's plain payload (cheap to pickle) and
    lazily builds its scorer on first call, so each worker pays the
    model reconstruction once per chunk, not once per profile.  Sharing
    one scorer across a chunk only accumulates more per-drive state —
    verdicts are per-drive independent, so it never changes any output.

    The scorer binds :func:`~repro.parallel.get_worker_observer` at
    build time and rebuilds when the observer changes, so on the thread
    backend (where one task object outlives a chunk) telemetry always
    lands in the *current* chunk's capture registry.
    """

    payload: dict
    _scorer: StreamScorer | None = None

    def __call__(self, profile: HealthProfile) -> list[MonitorVerdict]:
        observer = get_worker_observer()
        scorer = self._scorer
        if scorer is None or scorer._observer is not observer:
            scorer = StreamScorer(ModelBundle.from_payload(self.payload),
                                  observer=observer)
            self._scorer = scorer
        return scorer.replay_profile(profile)


def replay_fleet(bundle: ModelBundle,
                 profiles: Sequence[HealthProfile], *,
                 n_jobs: int = 1, backend: str = "process",
                 observer: PipelineObserver | None = None,
                 ) -> list[list[MonitorVerdict]]:
    """Replay every profile through the bundle at maximum throughput.

    Returns one verdict list per profile, in input order, for any
    ``n_jobs``/``backend`` — per-drive state keys on the serial, so
    profiles score independently and the fan-out is a pure performance
    knob.  The caller's observer sees a ``fleet-replay`` span plus the
    true scorer counters: workers emit through their own capture
    registries and :func:`~repro.parallel.map_drives` merges the deltas
    back, so ``n_jobs=4`` reports exactly the serial totals.  (An
    observer without a mergeable registry falls back to parent-side
    recounting from the returned verdicts.)
    """
    obs = resolve_observer(observer)
    config = ParallelConfig(n_jobs=n_jobs, backend=backend)
    task = _ReplayTask(bundle.to_payload())
    with obs.span("fleet-replay", n_profiles=len(profiles), n_jobs=n_jobs):
        results = map_drives(task, list(profiles), config,
                             observer=obs, label="replay-fanout")
    if not isinstance(getattr(obs, "metrics", None), MetricsRegistry):
        # No registry to merge worker deltas into (custom observer):
        # reconstruct the counters from the verdicts themselves.
        for verdicts in results:
            obs.count("samples_scored", len(verdicts))
            obs.count("alerts_emitted",
                      sum(1 for verdict in verdicts if verdict.alerting))
    obs.gauge("drives_tracked", len(results))
    return results
