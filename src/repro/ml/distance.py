"""Distance measures for degradation analysis.

The paper compares Euclidean and Mahalanobis distance for quantifying the
similarity of health records to the failure record (Section IV-C) and
finds Euclidean distance characterizes the near-failure changes better;
both are provided here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ModelError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.linalg.norm(a - b))


def euclidean_to_reference(matrix: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Euclidean distance of every row of ``matrix`` to ``reference``.

    This is the dissimilarity series of the paper's Figure 7 when
    ``matrix`` is a drive's health profile and ``reference`` its failure
    record.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if matrix.ndim != 2 or reference.ndim != 1:
        raise ModelError("expected a 2-D matrix and a 1-D reference")
    if matrix.shape[1] != reference.shape[0]:
        raise ModelError(
            f"matrix has {matrix.shape[1]} columns, reference {reference.shape[0]}"
        )
    return np.linalg.norm(matrix - reference, axis=1)


class MahalanobisDistance:
    """Mahalanobis distance under a covariance fitted on reference data.

    The covariance is regularized with a small ridge so that degenerate
    attributes (constant columns) do not make it singular — the situation
    the paper observed where "the lower Mahalanobis distances are all the
    same" is reproduced by near-singular covariances.
    """

    def __init__(self, ridge: float = 1.0e-6) -> None:
        if ridge < 0:
            raise ModelError("ridge must be non-negative")
        self._ridge = ridge
        self._mean: np.ndarray | None = None
        self._precision: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._precision is not None

    def fit(self, data: np.ndarray) -> "MahalanobisDistance":
        """Estimate the covariance from ``data`` (n_samples x n_features)."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ModelError("fit expects a 2-D matrix")
        if data.shape[0] < 2:
            raise ModelError("need at least two samples to fit a covariance")
        self._mean = data.mean(axis=0)
        covariance = np.cov(data, rowvar=False)
        covariance = np.atleast_2d(covariance)
        covariance = covariance + self._ridge * np.eye(covariance.shape[0])
        self._precision = np.linalg.inv(covariance)
        return self

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Mahalanobis distance between two vectors."""
        self._require_fitted()
        assert self._precision is not None
        delta = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
        return float(np.sqrt(delta @ self._precision @ delta))

    def to_reference(self, matrix: np.ndarray, reference: np.ndarray) -> np.ndarray:
        """Distance of every row of ``matrix`` to ``reference``."""
        self._require_fitted()
        assert self._precision is not None
        deltas = np.asarray(matrix, dtype=np.float64) - np.asarray(
            reference, dtype=np.float64
        )
        quadratic = np.einsum("ij,jk,ik->i", deltas, self._precision, deltas)
        return np.sqrt(np.maximum(quadratic, 0.0))

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ModelError("MahalanobisDistance used before fit()")
