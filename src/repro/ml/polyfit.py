"""Polynomial regression with the goodness-of-fit measures of Figure 8.

The paper fits degradation curves with free polynomial models of order 1
to 3 (reporting R-squared) and then compares constrained canonical forms
by RMSE.  :func:`fit_polynomial` covers the free fits;
:func:`evaluate_model` scores any fixed signature function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True, slots=True)
class PolynomialFit:
    """A fitted polynomial with its goodness-of-fit statistics.

    ``coefficients`` are in descending-power order, as produced by
    :func:`numpy.polyfit`.
    """

    order: int
    coefficients: tuple[float, ...]
    r_squared: float
    rmse: float

    def predict(self, t: np.ndarray | float) -> np.ndarray | float:
        values = np.polyval(np.asarray(self.coefficients), t)
        return float(values) if np.isscalar(t) else values


def fit_polynomial(t: np.ndarray, y: np.ndarray, order: int) -> PolynomialFit:
    """Least-squares polynomial fit of ``y`` against ``t``."""
    t = np.asarray(t, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if t.shape != y.shape or t.ndim != 1:
        raise ModelError("fit_polynomial expects matching 1-D arrays")
    if order < 1:
        raise ModelError("polynomial order must be at least 1")
    if t.shape[0] <= order:
        raise ModelError(
            f"need more than {order} points to fit an order-{order} polynomial"
        )
    coefficients = np.polyfit(t, y, order)
    predictions = np.polyval(coefficients, t)
    return PolynomialFit(
        order=order,
        coefficients=tuple(float(c) for c in coefficients),
        r_squared=_r_squared(y, predictions),
        rmse=_rmse(y, predictions),
    )


def fit_polynomial_family(t: np.ndarray, y: np.ndarray,
                          max_order: int = 3) -> list[PolynomialFit]:
    """Fit orders 1..``max_order``, as in the paper's Figure 8 panels."""
    return [fit_polynomial(t, y, order) for order in range(1, max_order + 1)]


def evaluate_model(t: np.ndarray, y: np.ndarray,
                   model: Callable[[np.ndarray], np.ndarray]) -> tuple[float, float]:
    """Return ``(rmse, r_squared)`` of a fixed model on the data.

    Used to compare the canonical signature forms (e.g. ``t^2/d^2 - 1``)
    against the free fits, reproducing the RMSE comparisons of
    Section IV-C.
    """
    t = np.asarray(t, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if t.shape != y.shape or t.ndim != 1:
        raise ModelError("evaluate_model expects matching 1-D arrays")
    predictions = np.asarray(model(t), dtype=np.float64)
    if predictions.shape != y.shape:
        raise ModelError("model output shape does not match the data")
    return _rmse(y, predictions), _r_squared(y, predictions)


def _rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    return float(np.sqrt(np.mean((actual - predicted) ** 2)))


def _r_squared(actual: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((actual - predicted) ** 2))
    total = float(np.sum((actual - actual.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total
