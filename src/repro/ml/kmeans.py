"""K-means clustering with k-means++ seeding and elbow analysis.

The paper clusters the 433 failure records (30 features each) with
K-means, measures "the average distance of failure records to their
center points for different numbers of clusters" (Figure 3) and picks the
elbow at k = 3.  :func:`elbow_analysis` reproduces that curve and the
knee selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, ModelError
from repro.ml.metrics import silhouette_score


class KMeans:
    """Lloyd's algorithm with k-means++ initialization.

    Parameters
    ----------
    n_clusters:
        Number of centroids.
    n_init:
        Independent restarts; the run with the lowest inertia wins.
    max_iter:
        Iteration cap per restart.
    tol:
        Convergence threshold on the centroid shift (Frobenius norm).
    seed:
        Seed of the private random stream.
    """

    def __init__(self, n_clusters: int, *, n_init: int = 10,
                 max_iter: int = 300, tol: float = 1.0e-6,
                 seed: int = 0) -> None:
        if n_clusters < 1:
            raise ModelError("n_clusters must be at least 1")
        if n_init < 1 or max_iter < 1:
            raise ModelError("n_init and max_iter must be positive")
        self._n_clusters = n_clusters
        self._n_init = n_init
        self._max_iter = max_iter
        self._tol = tol
        self._seed = seed
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None

    @property
    def n_clusters(self) -> int:
        return self._n_clusters

    def fit(self, data: np.ndarray) -> "KMeans":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ModelError("fit expects a 2-D matrix")
        if data.shape[0] < self._n_clusters:
            raise ModelError(
                f"cannot place {self._n_clusters} clusters on "
                f"{data.shape[0]} samples"
            )
        rng = np.random.default_rng(self._seed)
        best_inertia = np.inf
        best_centers: np.ndarray | None = None
        best_labels: np.ndarray | None = None
        for _ in range(self._n_init):
            centers, labels, inertia = self._single_run(data, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                best_centers = centers
                best_labels = labels
        assert best_centers is not None and best_labels is not None
        self.centers_ = best_centers
        self.labels_ = best_labels
        self.inertia_ = float(best_inertia)
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Assign each row to its nearest fitted centroid."""
        if self.centers_ is None:
            raise ModelError("KMeans used before fit()")
        data = np.asarray(data, dtype=np.float64)
        return np.argmin(_pairwise_sq_distances(data, self.centers_), axis=1)

    def average_within_cluster_distance(self, data: np.ndarray) -> float:
        """Mean Euclidean distance of samples to their assigned centroid.

        This is the y-axis of the paper's Figure 3.
        """
        if self.centers_ is None or self.labels_ is None:
            raise ModelError("KMeans used before fit()")
        data = np.asarray(data, dtype=np.float64)
        assigned = self.centers_[self.labels_]
        return float(np.mean(np.linalg.norm(data - assigned, axis=1)))

    # -- internals -------------------------------------------------------

    def _single_run(self, data: np.ndarray,
                    rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray, float]:
        centers = self._kmeans_plus_plus(data, rng)
        labels = np.zeros(data.shape[0], dtype=np.int64)
        for _ in range(self._max_iter):
            distances = _pairwise_sq_distances(data, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for cluster in range(self._n_clusters):
                members = data[labels == cluster]
                if members.shape[0] > 0:
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest sample.
                    farthest = int(np.argmax(distances.min(axis=1)))
                    new_centers[cluster] = data[farthest]
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift <= self._tol:
                break
        else:
            raise ConvergenceError(
                f"k-means did not converge in {self._max_iter} iterations"
            )
        inertia = float(
            np.sum(_pairwise_sq_distances(data, centers).min(axis=1))
        )
        return centers, labels, inertia

    def _kmeans_plus_plus(self, data: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
        n_samples = data.shape[0]
        centers = np.empty((self._n_clusters, data.shape[1]), dtype=np.float64)
        # Expanded-form distances: ||x||^2 is computed once and every
        # seeding round updates all candidate distances with one GEMV.
        data_sq = np.einsum("ij,ij->i", data, data)
        first = int(rng.integers(0, n_samples))
        centers[0] = data[first]
        closest_sq = _center_sq_distances(data, data_sq, centers[0])
        for index in range(1, self._n_clusters):
            total = float(closest_sq.sum())
            if total <= 0.0:
                # All remaining samples coincide with chosen centers.
                centers[index:] = centers[0]
                break
            probabilities = closest_sq / total
            choice = int(rng.choice(n_samples, p=probabilities))
            centers[index] = data[choice]
            candidate_sq = _center_sq_distances(data, data_sq, centers[index])
            closest_sq = np.minimum(closest_sq, candidate_sq)
        return centers


@dataclass(frozen=True, slots=True)
class ElbowAnalysis:
    """Result of sweeping k: the Figure 3 curve and the selected knee.

    ``average_distances`` is the paper's y-axis (one value per k starting
    at 1); ``silhouettes`` holds the selection scores for k >= 2.
    """

    cluster_counts: tuple[int, ...]
    average_distances: tuple[float, ...]
    silhouettes: tuple[float, ...]
    best_k: int

    def as_series(self) -> tuple[np.ndarray, np.ndarray]:
        return (np.asarray(self.cluster_counts),
                np.asarray(self.average_distances))


def elbow_analysis(data: np.ndarray, *, max_clusters: int = 10,
                   seed: int = 0) -> ElbowAnalysis:
    """Sweep k = 1..``max_clusters`` and select the best cluster count.

    The average within-cluster distance curve (the paper's Figure 3) is
    computed for every k; the selected k maximizes the mean silhouette
    coefficient, a per-point criterion that keeps a small-but-distinct
    group (the 7.6% bad-sector cluster) decisive where the population-
    averaged distance curve barely registers it.  On the paper's data and
    on the simulated fleets this selects k = 3.
    """
    data = np.asarray(data, dtype=np.float64)
    if max_clusters < 3:
        raise ModelError("elbow analysis needs max_clusters >= 3")
    counts = list(range(1, max_clusters + 1))
    distances = []
    silhouettes = []
    for k in counts:
        model = KMeans(k, seed=seed).fit(data)
        distances.append(model.average_within_cluster_distance(data))
        if k >= 2:
            assert model.labels_ is not None
            silhouettes.append(silhouette_score(data, model.labels_))
    best_k = counts[1:][int(np.argmax(silhouettes))]
    return ElbowAnalysis(
        cluster_counts=tuple(counts),
        average_distances=tuple(float(v) for v in distances),
        silhouettes=tuple(float(v) for v in silhouettes),
        best_k=best_k,
    )


def _pairwise_sq_distances(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``data`` and ``centers``.

    Uses the expanded form ``||x||^2 - 2 x.c + ||c||^2`` so the cross
    term is one GEMM instead of materializing an (n, k, d) difference
    tensor; cancellation can push tiny values below zero, so the result
    is clamped.
    """
    data_sq = np.einsum("ij,ij->i", data, data)
    center_sq = np.einsum("ij,ij->i", centers, centers)
    sq = data_sq[:, None] - 2.0 * (data @ centers.T) + center_sq[None, :]
    return np.maximum(sq, 0.0)


def _center_sq_distances(data: np.ndarray, data_sq: np.ndarray,
                         center: np.ndarray) -> np.ndarray:
    """Squared distances of every row of ``data`` to one center."""
    sq = data_sq - 2.0 * (data @ center) + center @ center
    return np.maximum(sq, 0.0)
