"""Ridge-regularized linear regression — the simplest degradation model.

Included as the sanity baseline for the prediction-method comparison:
a linear map from the twelve attributes to the degradation value.  The
closed-form normal-equation solution with a small ridge keeps the fit
stable under collinear attributes (RSC is a linear transform of R-RSC).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class RidgeRegressor:
    """Linear least squares with L2 regularization and an intercept."""

    def __init__(self, ridge: float = 1.0e-3) -> None:
        if ridge < 0:
            raise ModelError("ridge must be non-negative")
        self._ridge = ridge
        self.coefficients_: np.ndarray | None = None
        self.intercept_: float | None = None

    @property
    def is_fitted(self) -> bool:
        return self.coefficients_ is not None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or targets.ndim != 1:
            raise ModelError("fit expects a 2-D matrix and 1-D targets")
        if features.shape[0] != targets.shape[0]:
            raise ModelError("features and targets disagree on sample count")
        if features.shape[0] == 0:
            raise ModelError("cannot fit on zero samples")
        mean_x = features.mean(axis=0)
        mean_y = float(targets.mean())
        centered_x = features - mean_x
        centered_y = targets - mean_y
        gram = centered_x.T @ centered_x
        gram += self._ridge * np.eye(gram.shape[0])
        self.coefficients_ = np.linalg.solve(gram, centered_x.T @ centered_y)
        self.intercept_ = mean_y - float(mean_x @ self.coefficients_)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coefficients_ is None or self.intercept_ is None:
            raise ModelError("RidgeRegressor used before fit()")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.shape[1] != self.coefficients_.shape[0]:
            raise ModelError(
                f"expected {self.coefficients_.shape[0]} features, got "
                f"{features.shape[1]}"
            )
        return features @ self.coefficients_ + self.intercept_
