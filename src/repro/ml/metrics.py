"""Evaluation metrics.

Regression metrics for the Table III reproduction (RMSE and the paper's
error rate, RMSE over the target range), detection metrics (FDR/FAR) for
the Section II-C baselines, and clustering agreement measures used by the
test suite to verify that categorization recovers the simulator's
ground-truth failure modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root-mean-square error."""
    actual, predicted = _aligned(actual, predicted)
    return float(np.sqrt(np.mean((actual - predicted) ** 2)))


def error_rate(actual: np.ndarray, predicted: np.ndarray,
               target_range: float | None = None) -> float:
    """The paper's prediction error rate: RMSE over the target range.

    Table III derives its percentages by "considering the range of the
    target values": with degradation targets spanning ``[-1, 1]`` the
    range is 2, so an RMSE of 0.216 becomes the reported 10.8%.
    """
    actual, predicted = _aligned(actual, predicted)
    if target_range is None:
        target_range = float(actual.max() - actual.min())
    if target_range <= 0:
        raise ModelError("target range must be positive")
    return rmse(actual, predicted) / target_range


def r_squared(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination."""
    actual, predicted = _aligned(actual, predicted)
    residual = float(np.sum((actual - predicted) ** 2))
    total = float(np.sum((actual - actual.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


@dataclass(frozen=True, slots=True)
class DetectionRates:
    """Failure-detection quality of a binary detector.

    ``fdr`` is the failure detection rate (recall on failed drives);
    ``far`` the false alarm rate (fraction of good drives flagged) — the
    two numbers every disk-failure-prediction paper reports.
    """

    fdr: float
    far: float
    n_failed: int
    n_good: int


def detection_rates(is_failed: np.ndarray, flagged: np.ndarray) -> DetectionRates:
    """Compute FDR / FAR from ground-truth labels and detector output."""
    is_failed = np.asarray(is_failed, dtype=bool)
    flagged = np.asarray(flagged, dtype=bool)
    if is_failed.shape != flagged.shape:
        raise ModelError("labels and detector output must align")
    n_failed = int(np.sum(is_failed))
    n_good = int(np.sum(~is_failed))
    if n_failed == 0 or n_good == 0:
        raise ModelError("need both failed and good drives to compute rates")
    fdr = float(np.sum(flagged & is_failed)) / n_failed
    far = float(np.sum(flagged & ~is_failed)) / n_good
    return DetectionRates(fdr=fdr, far=far, n_failed=n_failed, n_good=n_good)


def silhouette_score(data: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient of a clustering.

    For each sample, ``(b - a) / max(a, b)`` where ``a`` is the mean
    distance to its own cluster and ``b`` the mean distance to the
    nearest other cluster.  Scores near 1 indicate tight, well-separated
    clusters; the measure weights every *point*, so a small but distinct
    cluster still pays off — unlike the average within-cluster distance,
    which barely moves when 7% of the records improve.
    """
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels)
    if data.ndim != 2 or labels.ndim != 1 or data.shape[0] != labels.shape[0]:
        raise ModelError("silhouette_score expects aligned data and labels")
    unique = np.unique(labels)
    if unique.shape[0] < 2:
        raise ModelError("silhouette needs at least two clusters")
    n_samples = data.shape[0]
    sq = np.sum(data * data, axis=1)
    distances = np.sqrt(np.maximum(
        sq[:, None] + sq[None, :] - 2.0 * data @ data.T, 0.0
    ))
    # Mean distance of every sample to every cluster.
    means = np.empty((n_samples, unique.shape[0]))
    counts = np.empty(unique.shape[0])
    for index, cluster in enumerate(unique):
        members = labels == cluster
        counts[index] = members.sum()
        means[:, index] = distances[:, members].mean(axis=1)

    scores = np.zeros(n_samples)
    label_index = np.searchsorted(unique, labels)
    for i in range(n_samples):
        own = label_index[i]
        own_count = counts[own]
        if own_count <= 1:
            scores[i] = 0.0  # singleton clusters score zero by convention
            continue
        # Remove the self-distance (zero) from the own-cluster mean.
        a = means[i, own] * own_count / (own_count - 1.0)
        b = np.min(np.delete(means[i], own))
        denominator = max(a, b)
        scores[i] = (b - a) / denominator if denominator > 0 else 0.0
    return float(scores.mean())


def rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Rand index between two flat clusterings (1.0 = identical)."""
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape or labels_a.ndim != 1:
        raise ModelError("rand_index expects two aligned 1-D label arrays")
    n = labels_a.shape[0]
    if n < 2:
        raise ModelError("rand_index needs at least two samples")
    same_a = labels_a[:, None] == labels_a[None, :]
    same_b = labels_b[:, None] == labels_b[None, :]
    upper = np.triu_indices(n, k=1)
    agreements = np.sum(same_a[upper] == same_b[upper])
    return float(agreements) / upper[0].shape[0]


def cluster_purity(labels: np.ndarray, ground_truth: np.ndarray) -> float:
    """Fraction of samples whose cluster's majority truth matches theirs."""
    labels = np.asarray(labels)
    ground_truth = np.asarray(ground_truth)
    if labels.shape != ground_truth.shape or labels.ndim != 1:
        raise ModelError("cluster_purity expects two aligned 1-D arrays")
    correct = 0
    for cluster in np.unique(labels):
        members = ground_truth[labels == cluster]
        _, counts = np.unique(members, return_counts=True)
        correct += int(counts.max())
    return correct / labels.shape[0]


def _aligned(actual: np.ndarray, predicted: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.shape != predicted.shape or actual.ndim != 1:
        raise ModelError("metrics expect two aligned 1-D arrays")
    if actual.shape[0] == 0:
        raise ModelError("metrics need at least one sample")
    return actual, predicted
