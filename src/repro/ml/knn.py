"""k-nearest-neighbors regression — an alternative degradation predictor.

The paper's future work plans to "test more prediction methods and
evaluate their performance for disk degradation prediction"; k-NN is the
natural non-parametric contender to the regression tree.  Brute-force
neighbor search in chunks keeps memory bounded on large training sets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

_CHUNK_ROWS = 256


class KNNRegressor:
    """Distance-weighted k-nearest-neighbor regression.

    Parameters
    ----------
    n_neighbors:
        Neighborhood size.
    weighted:
        Inverse-distance weighting of neighbor targets (uniform when
        ``False``).  An exact training-point match returns that point's
        target.
    """

    def __init__(self, n_neighbors: int = 5, *, weighted: bool = True) -> None:
        if n_neighbors < 1:
            raise ModelError("n_neighbors must be positive")
        self._n_neighbors = n_neighbors
        self._weighted = weighted
        self._features: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._features is not None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "KNNRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or targets.ndim != 1:
            raise ModelError("fit expects a 2-D matrix and 1-D targets")
        if features.shape[0] != targets.shape[0]:
            raise ModelError("features and targets disagree on sample count")
        if features.shape[0] < self._n_neighbors:
            raise ModelError(
                f"need at least {self._n_neighbors} training samples"
            )
        self._features = features
        self._targets = targets
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._features is None or self._targets is None:
            raise ModelError("KNNRegressor used before fit()")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.shape[1] != self._features.shape[1]:
            raise ModelError(
                f"expected {self._features.shape[1]} features, got "
                f"{features.shape[1]}"
            )
        out = np.empty(features.shape[0], dtype=np.float64)
        train_sq = np.sum(self._features ** 2, axis=1)
        for start in range(0, features.shape[0], _CHUNK_ROWS):
            chunk = features[start:start + _CHUNK_ROWS]
            distances_sq = np.maximum(
                np.sum(chunk ** 2, axis=1)[:, None]
                + train_sq[None, :]
                - 2.0 * chunk @ self._features.T,
                0.0,
            )
            neighbor_index = np.argpartition(
                distances_sq, self._n_neighbors - 1, axis=1
            )[:, : self._n_neighbors]
            neighbor_sq = np.take_along_axis(distances_sq, neighbor_index,
                                             axis=1)
            neighbor_targets = self._targets[neighbor_index]
            if not self._weighted:
                out[start:start + chunk.shape[0]] = neighbor_targets.mean(axis=1)
                continue
            weights = 1.0 / (np.sqrt(neighbor_sq) + 1.0e-12)
            out[start:start + chunk.shape[0]] = (
                np.sum(weights * neighbor_targets, axis=1)
                / np.sum(weights, axis=1)
            )
        return out
