"""Principal component analysis via singular value decomposition.

Used to project the 30-dimensional failure records onto the two principal
components of the paper's Figure 4 scatter plot.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class PCA:
    """Dense PCA on centered data.

    Components are deterministic up to sign; the sign is fixed so the
    largest-magnitude loading of each component is positive, making
    projections reproducible across platforms.
    """

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise ModelError("n_components must be positive")
        self._n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    @property
    def n_components(self) -> int:
        return self._n_components

    def fit(self, data: np.ndarray) -> "PCA":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ModelError("fit expects a 2-D matrix")
        n_samples, n_features = data.shape
        if self._n_components > min(n_samples, n_features):
            raise ModelError(
                f"cannot extract {self._n_components} components from a "
                f"{n_samples}x{n_features} matrix"
            )
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        components = vt[: self._n_components]
        # Deterministic sign convention.
        for row in components:
            pivot = np.argmax(np.abs(row))
            if row[pivot] < 0:
                row *= -1.0
        self.components_ = components
        variance = (singular_values ** 2) / max(n_samples - 1, 1)
        self.explained_variance_ = variance[: self._n_components]
        total = float(variance.sum())
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total if total > 0
            else np.zeros(self._n_components)
        )
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise ModelError("PCA used before fit()")
        data = np.asarray(data, dtype=np.float64)
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Map projections back into the original feature space."""
        if self.components_ is None or self.mean_ is None:
            raise ModelError("PCA used before fit()")
        projected = np.asarray(projected, dtype=np.float64)
        return projected @ self.components_ + self.mean_
