"""Pre-vectorization reference kernels for the ML layer.

Frozen copies of the loop-based algorithms that ``repro.ml`` shipped
before the batched rewrites, kept for two purposes:

* the golden equivalence tests (``tests/test_ml_kernel_equivalence.py``)
  assert the production kernels reproduce these outputs byte-for-byte
  (SVC labels, tree structure, HMM log-likelihoods);
* the microbenchmarks (``benchmarks/test_ml_microbench.py``) measure
  the production kernels against them, so the recorded speedups compare
  algorithms, not repository snapshots.

Everything here favors obviousness over speed — these are the
specifications the fast kernels are held to.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

from repro.ml.hmm import _LOG_FLOOR, GaussianHMM
from repro.ml.svc import SupportVectorClustering
from repro.ml.tree import RegressionTree, TreeNode

__all__ = [
    "reference_connectivity_labels",
    "ReferenceRegressionTree",
    "ReferenceGaussianHMM",
    "reference_pairwise_sq_distances",
    "reference_kmeans_plus_plus",
]


# -- SVC: pairwise segment-sampled connectivity ------------------------------

def reference_connectivity_labels(model: SupportVectorClustering,
                                  data: np.ndarray) -> np.ndarray:
    """Label clusters the pre-batching way: one pair at a time.

    Walks every pair (i, j), samples the connecting segment and keeps
    the pair in one cluster when every sample stays inside the fitted
    sphere — O(n^2 * segment_samples) kernel evaluations.
    """
    assert model.radius_ is not None
    data = np.asarray(data, dtype=np.float64)
    n_samples = data.shape[0]
    radius_sq = model.radius_ ** 2 * (1.0 + 1.0e-6)
    fractions = (np.arange(1, model._segment_samples + 1)
                 / (model._segment_samples + 1))
    parent = np.arange(n_samples)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        root_x, root_y = find(x), find(y)
        if root_x != root_y:
            parent[root_x] = root_y

    for i in range(n_samples - 1):
        for j in range(i + 1, n_samples):
            if find(i) == find(j):
                continue
            segment = (data[i][None, :]
                       + fractions[:, None] * (data[j] - data[i])[None, :])
            if np.all(model.sphere_distance_sq(segment) <= radius_sq):
                union(i, j)

    roots = np.array([find(i) for i in range(n_samples)])
    _, labels = np.unique(roots, return_inverse=True)
    return labels


# -- CART: re-sorting tree grower --------------------------------------------

class ReferenceRegressionTree(RegressionTree):
    """Regression tree grown by re-argsorting every feature per node."""

    def fit(self, features: np.ndarray, targets: np.ndarray,
            feature_names=None) -> "ReferenceRegressionTree":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        self.n_features_ = features.shape[1]
        self.feature_names_ = tuple(feature_names) if feature_names else None
        self.root_ = self._grow_resorting(features, targets, depth=0)
        return self

    def _grow_resorting(self, features: np.ndarray, targets: np.ndarray,
                        depth: int) -> TreeNode:
        node = TreeNode(
            value=float(targets.mean()),
            n_samples=targets.shape[0],
            sse=float(np.sum((targets - targets.mean()) ** 2)),
        )
        if (depth >= self._max_depth
                or targets.shape[0] < self._min_samples_split
                or node.sse <= 0.0):
            return node
        split = self._best_split_resorting(features, targets)
        if split is None:
            return node
        feature_index, threshold, gain = split
        if gain < self._min_sse_decrease:
            return node
        mask = features[:, feature_index] < threshold
        node.feature_index = feature_index
        node.threshold = threshold
        node.left = self._grow_resorting(features[mask], targets[mask],
                                         depth + 1)
        node.right = self._grow_resorting(features[~mask], targets[~mask],
                                          depth + 1)
        return node

    def _best_split_resorting(self, features: np.ndarray,
                              targets: np.ndarray):
        n_samples = targets.shape[0]
        parent_sse = float(np.sum((targets - targets.mean()) ** 2))
        best = None
        best_children_sse = np.inf
        for feature_index in range(features.shape[1]):
            column = features[:, feature_index]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            sorted_targets = targets[order]
            cumsum = np.cumsum(sorted_targets)
            cumsq = np.cumsum(sorted_targets ** 2)
            counts = np.arange(1, n_samples + 1, dtype=np.float64)
            left_sse = cumsq - cumsum ** 2 / counts
            right_sum = cumsum[-1] - cumsum
            right_sq = cumsq[-1] - cumsq
            right_counts = n_samples - counts
            with np.errstate(divide="ignore", invalid="ignore"):
                right_sse = right_sq - np.where(
                    right_counts > 0, right_sum ** 2 / right_counts, 0.0
                )
            children = left_sse[:-1] + right_sse[:-1]
            valid = (
                (sorted_values[:-1] != sorted_values[1:])
                & (counts[:-1] >= self._min_samples_leaf)
                & (right_counts[:-1] >= self._min_samples_leaf)
            )
            if not np.any(valid):
                continue
            children = np.where(valid, children, np.inf)
            position = int(np.argmin(children))
            if children[position] < best_children_sse:
                best_children_sse = float(children[position])
                threshold = float(
                    (sorted_values[position] + sorted_values[position + 1]) / 2.0
                )
                best = (feature_index, threshold,
                        parent_sse - best_children_sse)
        return best


# -- HMM: one-sequence-at-a-time Baum-Welch ----------------------------------

def _reference_log_emissions(model: GaussianHMM,
                             sequence: np.ndarray) -> np.ndarray:
    deltas = sequence[:, None, :] - model.means_[None, :, :]
    log_b = -0.5 * np.sum(
        deltas ** 2 / model.variances_[None, :, :]
        + np.log(2.0 * np.pi * model.variances_[None, :, :]),
        axis=2,
    )
    return np.maximum(log_b, _LOG_FLOOR)


def _reference_forward(model: GaussianHMM, log_b: np.ndarray) -> np.ndarray:
    n_steps = log_b.shape[0]
    log_alpha = np.empty_like(log_b)
    log_alpha[0] = model.start_log_ + log_b[0]
    for t in range(1, n_steps):
        log_alpha[t] = log_b[t] + logsumexp(
            log_alpha[t - 1][:, None] + model.transition_log_, axis=0
        )
    return log_alpha


def _reference_backward(model: GaussianHMM, log_b: np.ndarray) -> np.ndarray:
    n_steps = log_b.shape[0]
    log_beta = np.zeros_like(log_b)
    for t in range(n_steps - 2, -1, -1):
        log_beta[t] = logsumexp(
            model.transition_log_ + log_b[t + 1] + log_beta[t + 1],
            axis=1,
        )
    return log_beta


class ReferenceGaussianHMM(GaussianHMM):
    """Baum-Welch that runs forward/backward per sequence, sequentially."""

    def score(self, sequence: np.ndarray) -> float:
        self._require_fitted()
        sequence = self._validated(sequence)
        log_alpha = _reference_forward(
            self, _reference_log_emissions(self, sequence))
        return float(logsumexp(log_alpha[-1]))

    def _em_step(self, sequences: list[np.ndarray]) -> float:
        k = self.n_states
        d = self.means_.shape[1]
        start_acc = np.zeros(k)
        transition_acc = np.zeros((k, k))
        weight_acc = np.zeros(k)
        mean_acc = np.zeros((k, d))
        square_acc = np.zeros((k, d))
        total_log_likelihood = 0.0

        for sequence in sequences:
            log_b = _reference_log_emissions(self, sequence)
            log_alpha = _reference_forward(self, log_b)
            log_beta = _reference_backward(self, log_b)
            log_likelihood = float(logsumexp(log_alpha[-1]))
            total_log_likelihood += log_likelihood
            gamma = np.exp(log_alpha + log_beta - log_likelihood)
            start_acc += gamma[0]
            weight_acc += gamma.sum(axis=0)
            mean_acc += gamma.T @ sequence
            square_acc += gamma.T @ (sequence ** 2)
            if sequence.shape[0] > 1:
                log_xi = (
                    log_alpha[:-1, :, None]
                    + self.transition_log_[None, :, :]
                    + log_b[1:, None, :]
                    + log_beta[1:, None, :]
                    - log_likelihood
                )
                transition_acc += np.exp(logsumexp(log_xi, axis=0))

        start = start_acc / max(start_acc.sum(), 1.0e-300)
        self.start_log_ = np.log(np.maximum(start, 1.0e-300))
        row_sums = transition_acc.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            transition = np.where(row_sums > 0,
                                  transition_acc / row_sums,
                                  1.0 / k)
        self.transition_log_ = np.log(np.maximum(transition, 1.0e-300))
        weights = np.maximum(weight_acc, 1.0e-300)[:, None]
        self.means_ = mean_acc / weights
        self.variances_ = np.maximum(
            square_acc / weights - self.means_ ** 2, 1.0e-6
        )
        return total_log_likelihood


# -- K-means: difference-tensor distances and per-center seeding -------------

def reference_pairwise_sq_distances(data: np.ndarray,
                                    centers: np.ndarray) -> np.ndarray:
    """Squared distances via the (n, k, d) difference tensor."""
    diff = data[:, np.newaxis, :] - centers[np.newaxis, :, :]
    return np.sum(diff * diff, axis=2)


def reference_kmeans_plus_plus(n_clusters: int, data: np.ndarray,
                               rng: np.random.Generator) -> np.ndarray:
    """K-means++ seeding recomputing full difference-based distances."""
    n_samples = data.shape[0]
    centers = np.empty((n_clusters, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n_samples))
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for index in range(1, n_clusters):
        total = float(closest_sq.sum())
        if total <= 0.0:
            centers[index:] = centers[0]
            break
        probabilities = closest_sq / total
        choice = int(rng.choice(n_samples, p=probabilities))
        centers[index] = data[choice]
        candidate_sq = np.sum((data - centers[index]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, candidate_sq)
    return centers
