"""Support Vector Clustering (Ben-Hur, Horn, Siegelmann & Vapnik, 2001).

The paper cross-checks its K-means failure groups with SVC and reports
both "generate the same results".  This implementation follows the
original algorithm:

1. Solve the support vector domain description (SVDD) dual with a
   Gaussian kernel — a minimal enclosing hypersphere in feature space —
   by Frank-Wolfe iterations over the (capped) simplex with exact line
   search, converging on the duality gap.
2. Label clusters by contour connectivity: two points belong to the same
   cluster when every sampled point on the line segment between them
   stays inside the sphere.  Connected components of that adjacency graph
   are the clusters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ModelError


class SupportVectorClustering:
    """Gaussian-kernel SVC.

    Parameters
    ----------
    gaussian_width:
        Kernel parameter ``q`` in ``exp(-q * ||a - b||^2)``.  ``None``
        selects ``1 / median(pairwise squared distance)``, a standard
        self-tuning choice.
    soft_margin:
        Fraction of points allowed to become bounded support vectors
        (outliers); translates to the box constraint ``C = 1 / (n * p)``.
        ``0`` yields a hard margin.
    segment_samples:
        Points sampled on each segment for the connectivity check.
    max_passes:
        Frank-Wolfe iteration cap.
    """

    def __init__(self, *, gaussian_width: float | None = None,
                 soft_margin: float = 0.0, segment_samples: int = 7,
                 max_passes: int = 20000, tol: float = 1.0e-4) -> None:
        if gaussian_width is not None and gaussian_width <= 0:
            raise ModelError("gaussian_width must be positive")
        if not 0.0 <= soft_margin < 1.0:
            raise ModelError("soft_margin must lie in [0, 1)")
        if segment_samples < 1:
            raise ModelError("segment_samples must be positive")
        self._q = gaussian_width
        self._soft_margin = soft_margin
        self._segment_samples = segment_samples
        self._max_passes = max_passes
        self._tol = tol
        self.labels_: np.ndarray | None = None
        self.beta_: np.ndarray | None = None
        self.radius_: float | None = None
        self.q_: float | None = None
        self._data: np.ndarray | None = None

    @property
    def n_clusters_(self) -> int:
        if self.labels_ is None:
            raise ModelError("SupportVectorClustering used before fit()")
        return int(self.labels_.max()) + 1

    def fit(self, data: np.ndarray) -> "SupportVectorClustering":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ModelError("fit expects a 2-D matrix")
        n_samples = data.shape[0]
        if n_samples < 2:
            raise ModelError("need at least two samples to cluster")
        self._data = data
        self.q_ = self._q if self._q is not None else self._auto_width(data)
        kernel = self._kernel_matrix(data, data)
        beta = self._solve_svdd(kernel)
        self.beta_ = beta
        self.radius_ = self._sphere_radius(kernel, beta)
        self.labels_ = self._label_by_connectivity(data, beta)
        return self

    def sphere_distance_sq(self, points: np.ndarray) -> np.ndarray:
        """Squared feature-space distance of points to the sphere center."""
        if self._data is None or self.beta_ is None:
            raise ModelError("SupportVectorClustering used before fit()")
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        cross = self._kernel_matrix(points, self._data)
        constant = float(self.beta_ @ self._train_kernel() @ self.beta_)
        return 1.0 - 2.0 * cross @ self.beta_ + constant

    # -- internals -------------------------------------------------------

    def _auto_width(self, data: np.ndarray) -> float:
        sq_distances = _pairwise_sq(data)
        upper = sq_distances[np.triu_indices(data.shape[0], k=1)]
        median = float(np.median(upper))
        if median <= 0:
            return 1.0
        return 1.0 / median

    def _kernel_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        assert self.q_ is not None
        a_sq = np.sum(a * a, axis=1)[:, None]
        b_sq = np.sum(b * b, axis=1)[None, :]
        sq = np.maximum(a_sq + b_sq - 2.0 * a @ b.T, 0.0)
        return np.exp(-self.q_ * sq)

    def _train_kernel(self) -> np.ndarray:
        assert self._data is not None
        if not hasattr(self, "_cached_kernel"):
            self._cached_kernel = self._kernel_matrix(self._data, self._data)
        return self._cached_kernel

    def _box_limit(self, n_samples: int) -> float:
        if self._soft_margin <= 0.0:
            return 1.0
        return 1.0 / (n_samples * self._soft_margin)

    def _solve_svdd(self, kernel: np.ndarray) -> np.ndarray:
        """Frank-Wolfe on ``min beta' K beta`` over the capped simplex.

        Each step moves toward the best feasible vertex with an exact
        line search; the duality gap certifies convergence.
        """
        n_samples = kernel.shape[0]
        limit = self._box_limit(n_samples)
        if limit < 1.0 / n_samples:
            raise ModelError("soft_margin too aggressive for the sample count")
        beta = np.full(n_samples, 1.0 / n_samples)
        k_beta = kernel @ beta
        objective = float(beta @ k_beta)
        for _ in range(self._max_passes):
            vertex = self._best_vertex(k_beta, limit)
            if limit >= 1.0:
                # Hard margin: the vertex is a single coordinate, so the
                # kernel product is just that column.
                k_vertex = kernel[:, int(np.argmax(vertex))]
            else:
                k_vertex = kernel @ vertex
            # Duality gap of the linearization at beta.
            gap = 2.0 * (objective - float(vertex @ k_beta))
            if gap <= self._tol:
                return beta
            # Exact line search along beta + gamma (vertex - beta).
            cross = float(vertex @ k_beta)
            vertex_term = float(vertex @ k_vertex)
            denominator = objective - 2.0 * cross + vertex_term
            if denominator <= 0.0:
                gamma = 1.0
            else:
                gamma = float(np.clip((objective - cross) / denominator,
                                      0.0, 1.0))
            if gamma <= 0.0:
                return beta
            beta = (1.0 - gamma) * beta + gamma * vertex
            k_beta = (1.0 - gamma) * k_beta + gamma * k_vertex
            objective = float(beta @ k_beta)
        raise ConvergenceError(
            f"SVDD Frank-Wolfe did not converge within {self._max_passes} "
            f"iterations"
        )

    @staticmethod
    def _best_vertex(k_beta: np.ndarray, limit: float) -> np.ndarray:
        """Feasible vertex minimizing the linearized objective.

        On the capped simplex the LP solution stacks mass ``limit`` on the
        coordinates with the smallest gradient until the budget of 1 is
        spent.
        """
        n_samples = k_beta.shape[0]
        vertex = np.zeros(n_samples)
        if limit >= 1.0:
            vertex[int(np.argmin(k_beta))] = 1.0
            return vertex
        order = np.argsort(k_beta)
        remaining = 1.0
        for index in order:
            allocation = min(limit, remaining)
            vertex[index] = allocation
            remaining -= allocation
            if remaining <= 0.0:
                break
        return vertex

    def _sphere_radius(self, kernel: np.ndarray, beta: np.ndarray) -> float:
        limit = self._box_limit(kernel.shape[0])
        constant = float(beta @ kernel @ beta)
        distances_sq = 1.0 - 2.0 * kernel @ beta + constant
        if limit >= 1.0:
            # Hard margin: the minimal enclosing ball contains every point.
            return float(np.sqrt(np.maximum(distances_sq.max(), 0.0)))
        margin = 1.0e-8
        free = (beta > margin) & (beta < limit - margin)
        if np.any(free):
            return float(np.sqrt(np.maximum(distances_sq[free].mean(), 0.0)))
        support = beta > margin
        return float(np.sqrt(np.maximum(distances_sq[support].max(), 0.0)))

    def _label_by_connectivity(self, data: np.ndarray,
                               beta: np.ndarray) -> np.ndarray:
        assert self.radius_ is not None
        n_samples = data.shape[0]
        radius_sq = self.radius_ ** 2 * (1.0 + 1.0e-6)
        fractions = (np.arange(1, self._segment_samples + 1)
                     / (self._segment_samples + 1))
        parent = np.arange(n_samples)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: int, y: int) -> None:
            root_x, root_y = find(x), find(y)
            if root_x != root_y:
                parent[root_x] = root_y

        # Check connectivity for each pair not already merged.
        for i in range(n_samples - 1):
            for j in range(i + 1, n_samples):
                if find(i) == find(j):
                    continue
                segment = (data[i][None, :]
                           + fractions[:, None] * (data[j] - data[i])[None, :])
                if np.all(self.sphere_distance_sq(segment) <= radius_sq):
                    union(i, j)

        roots = np.array([find(i) for i in range(n_samples)])
        _, labels = np.unique(roots, return_inverse=True)
        return labels


def _pairwise_sq(data: np.ndarray) -> np.ndarray:
    sq = np.sum(data * data, axis=1)
    return np.maximum(sq[:, None] + sq[None, :] - 2.0 * data @ data.T, 0.0)
