"""Support Vector Clustering (Ben-Hur, Horn, Siegelmann & Vapnik, 2001).

The paper cross-checks its K-means failure groups with SVC and reports
both "generate the same results".  This implementation follows the
original algorithm:

1. Solve the support vector domain description (SVDD) dual with a
   Gaussian kernel — a minimal enclosing hypersphere in feature space —
   by Frank-Wolfe iterations over the (capped) simplex with exact line
   search, converging on the duality gap.
2. Label clusters by contour connectivity: two points belong to the same
   cluster when every sampled point on the line segment between them
   stays inside the sphere.  Connected components of that adjacency graph
   are the clusters.

The connectivity check is the quadratic part and runs fully batched:
candidate pairs are screened in blocks, segment sphere-distances for a
whole block are one kernel evaluation, the ``beta' K beta`` center term
is computed once per fit, pairs already union-found into one component
are skipped, and a triangle-inequality bound on the feature-space
distance rules out most cross-cluster pairs without touching the kernel.
Pairs are processed in the same lexicographic order as the historical
per-pair loop, so the resulting labels are identical to it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ModelError


class SupportVectorClustering:
    """Gaussian-kernel SVC.

    Parameters
    ----------
    gaussian_width:
        Kernel parameter ``q`` in ``exp(-q * ||a - b||^2)``.  ``None``
        selects ``1 / median(pairwise squared distance)``, a standard
        self-tuning choice.
    soft_margin:
        Fraction of points allowed to become bounded support vectors
        (outliers); translates to the box constraint ``C = 1 / (n * p)``.
        ``0`` yields a hard margin.
    segment_samples:
        Points sampled on each segment for the connectivity check.
    max_passes:
        Frank-Wolfe iteration cap.
    """

    def __init__(self, *, gaussian_width: float | None = None,
                 soft_margin: float = 0.0, segment_samples: int = 7,
                 max_passes: int = 20000, tol: float = 1.0e-4) -> None:
        if gaussian_width is not None and gaussian_width <= 0:
            raise ModelError("gaussian_width must be positive")
        if not 0.0 <= soft_margin < 1.0:
            raise ModelError("soft_margin must lie in [0, 1)")
        if segment_samples < 1:
            raise ModelError("segment_samples must be positive")
        self._q = gaussian_width
        self._soft_margin = soft_margin
        self._segment_samples = segment_samples
        self._max_passes = max_passes
        self._tol = tol
        self.labels_: np.ndarray | None = None
        self.beta_: np.ndarray | None = None
        self.radius_: float | None = None
        self.q_: float | None = None
        self._data: np.ndarray | None = None
        self._cached_kernel: np.ndarray | None = None
        self._center_sq: float | None = None

    @property
    def n_clusters_(self) -> int:
        if self.labels_ is None:
            raise ModelError("SupportVectorClustering used before fit()")
        return int(self.labels_.max()) + 1

    def fit(self, data: np.ndarray) -> "SupportVectorClustering":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ModelError("fit expects a 2-D matrix")
        n_samples = data.shape[0]
        if n_samples < 2:
            raise ModelError("need at least two samples to cluster")
        self._data = data
        self.q_ = self._q if self._q is not None else self._auto_width(data)
        kernel = self._kernel_matrix(data, data)
        self._cached_kernel = kernel
        beta = self._solve_svdd(kernel)
        self.beta_ = beta
        self._center_sq = float(beta @ kernel @ beta)
        self.radius_ = self._sphere_radius(kernel, beta)
        self.labels_ = self._label_by_connectivity(data, beta)
        return self

    def sphere_distance_sq(self, points: np.ndarray) -> np.ndarray:
        """Squared feature-space distance of points to the sphere center."""
        if self._data is None or self.beta_ is None:
            raise ModelError("SupportVectorClustering used before fit()")
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        cross = self._kernel_matrix(points, self._data)
        return 1.0 - 2.0 * cross @ self.beta_ + self._center_norm_sq()

    # -- internals -------------------------------------------------------

    def _auto_width(self, data: np.ndarray) -> float:
        sq_distances = _pairwise_sq(data)
        upper = sq_distances[np.triu_indices(data.shape[0], k=1)]
        median = float(np.median(upper))
        if median <= 0:
            return 1.0
        return 1.0 / median

    def _kernel_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        assert self.q_ is not None
        a_sq = np.sum(a * a, axis=1)[:, None]
        b_sq = np.sum(b * b, axis=1)[None, :]
        sq = np.maximum(a_sq + b_sq - 2.0 * a @ b.T, 0.0)
        return np.exp(-self.q_ * sq)

    def _train_kernel(self) -> np.ndarray:
        assert self._data is not None
        if self._cached_kernel is None:
            self._cached_kernel = self._kernel_matrix(self._data, self._data)
        return self._cached_kernel

    def _center_norm_sq(self) -> float:
        """``beta' K beta``, the center's squared norm term — computed
        once per fit instead of once per distance query."""
        if self._center_sq is None:
            assert self.beta_ is not None
            self._center_sq = float(
                self.beta_ @ self._train_kernel() @ self.beta_
            )
        return self._center_sq

    def _box_limit(self, n_samples: int) -> float:
        if self._soft_margin <= 0.0:
            return 1.0
        return 1.0 / (n_samples * self._soft_margin)

    def _solve_svdd(self, kernel: np.ndarray) -> np.ndarray:
        """Frank-Wolfe on ``min beta' K beta`` over the capped simplex.

        Each step moves toward the best feasible vertex with an exact
        line search; the duality gap certifies convergence.
        """
        n_samples = kernel.shape[0]
        limit = self._box_limit(n_samples)
        if limit < 1.0 / n_samples:
            raise ModelError("soft_margin too aggressive for the sample count")
        beta = np.full(n_samples, 1.0 / n_samples)
        k_beta = kernel @ beta
        objective = float(beta @ k_beta)
        for _ in range(self._max_passes):
            vertex = self._best_vertex(k_beta, limit)
            if limit >= 1.0:
                # Hard margin: the vertex is a single coordinate, so the
                # kernel product is just that column.
                k_vertex = kernel[:, int(np.argmax(vertex))]
            else:
                k_vertex = kernel @ vertex
            # Duality gap of the linearization at beta.
            gap = 2.0 * (objective - float(vertex @ k_beta))
            if gap <= self._tol:
                return beta
            # Exact line search along beta + gamma (vertex - beta).
            cross = float(vertex @ k_beta)
            vertex_term = float(vertex @ k_vertex)
            denominator = objective - 2.0 * cross + vertex_term
            if denominator <= 0.0:
                gamma = 1.0
            else:
                gamma = float(np.clip((objective - cross) / denominator,
                                      0.0, 1.0))
            if gamma <= 0.0:
                return beta
            beta = (1.0 - gamma) * beta + gamma * vertex
            k_beta = (1.0 - gamma) * k_beta + gamma * k_vertex
            objective = float(beta @ k_beta)
        raise ConvergenceError(
            f"SVDD Frank-Wolfe did not converge within {self._max_passes} "
            f"iterations"
        )

    @staticmethod
    def _best_vertex(k_beta: np.ndarray, limit: float) -> np.ndarray:
        """Feasible vertex minimizing the linearized objective.

        On the capped simplex the LP solution stacks mass ``limit`` on the
        coordinates with the smallest gradient until the budget of 1 is
        spent.
        """
        n_samples = k_beta.shape[0]
        vertex = np.zeros(n_samples)
        if limit >= 1.0:
            vertex[int(np.argmin(k_beta))] = 1.0
            return vertex
        order = np.argsort(k_beta)
        remaining = 1.0
        for index in order:
            allocation = min(limit, remaining)
            vertex[index] = allocation
            remaining -= allocation
            if remaining <= 0.0:
                break
        return vertex

    def _sphere_radius(self, kernel: np.ndarray, beta: np.ndarray) -> float:
        limit = self._box_limit(kernel.shape[0])
        constant = float(beta @ kernel @ beta)
        distances_sq = 1.0 - 2.0 * kernel @ beta + constant
        if limit >= 1.0:
            # Hard margin: the minimal enclosing ball contains every point.
            return float(np.sqrt(np.maximum(distances_sq.max(), 0.0)))
        margin = 1.0e-8
        free = (beta > margin) & (beta < limit - margin)
        if np.any(free):
            return float(np.sqrt(np.maximum(distances_sq[free].mean(), 0.0)))
        support = beta > margin
        return float(np.sqrt(np.maximum(distances_sq[support].max(), 0.0)))

    def _label_by_connectivity(self, data: np.ndarray,
                               beta: np.ndarray) -> np.ndarray:
        """Connected components of the contour graph, evaluated in blocks.

        Pairs are screened and union-found in the lexicographic order
        the per-pair loop used, so the final roots — and therefore the
        labels — are identical to evaluating every pair one at a time.
        Three things make it fast:

        * pairs whose endpoints already share a component are dropped
          before any kernel work;
        * a triangle-inequality bound (segment points cannot be closer
          to the sphere center than an endpoint's distance minus the
          feature-space chord to that endpoint) rejects pairs whose
          outlier endpoints already put the segment outside;
        * the middle segment sample — the point most likely to leave the
          sphere — is evaluated first for every pair in one batched
          kernel call, and only pairs whose midpoint stays inside get
          the full segment evaluation.  The midpoint value is computed
          exactly as the full evaluation computes it, so the screen
          never changes the outcome, only the work.
        """
        assert self.radius_ is not None and self.q_ is not None
        n_samples = data.shape[0]
        radius_sq = self.radius_ ** 2 * (1.0 + 1.0e-6)
        fractions = (np.arange(1, self._segment_samples + 1)
                     / (self._segment_samples + 1))
        parent = np.arange(n_samples)
        # Component id per sample: lets whole blocks be screened with one
        # vectorized comparison instead of per-pair find() calls.
        component = np.arange(n_samples)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: int, y: int) -> None:
            root_x, root_y = find(x), find(y)
            if root_x != root_y:
                parent[root_x] = root_y
                component[component == component[x]] = component[y]

        # Per-point feature-space distance to the sphere center and the
        # radius, for the triangle-inequality screen.  The small margin
        # keeps the bound conservative against rounding, so a pruned
        # pair is one the exact evaluation would reject too.
        point_distance = np.sqrt(
            np.maximum(self.sphere_distance_sq(data), 0.0)
        )
        radius_margin = float(np.sqrt(radius_sq)) + 1.0e-9

        pair_i, pair_j = np.triu_indices(n_samples, k=1)
        # Block size targets a bounded kernel workspace:
        # block * segment_samples rows against n_samples columns.
        block = max(128, 4_000_000 // max(1, self._segment_samples * n_samples))
        for start in range(0, pair_i.shape[0], block):
            i_block = pair_i[start:start + block]
            j_block = pair_j[start:start + block]
            # Short-circuit pairs already merged into one component.
            active = component[i_block] != component[j_block]
            i_block, j_block = i_block[active], j_block[active]
            if i_block.size == 0:
                continue
            # Triangle-inequality screen.  A point s at input distance r
            # from endpoint x has feature-space chord
            # ||phi(s) - phi(x)|| = sqrt(2 - 2 exp(-q r^2)), so its
            # distance to the center is at least d(x) - chord.  If any
            # sampled point's bound already exceeds the radius, the
            # segment leaves the sphere and the pair is disconnected.
            deltas = data[j_block] - data[i_block]
            pair_dist = np.sqrt(np.sum(deltas * deltas, axis=1))
            from_i = fractions[None, :] * pair_dist[:, None]
            from_j = (1.0 - fractions)[None, :] * pair_dist[:, None]
            bound = np.maximum(
                point_distance[i_block][:, None] - _chord(from_i, self.q_),
                point_distance[j_block][:, None] - _chord(from_j, self.q_),
            )
            survives = ~np.any(bound > radius_margin, axis=1)
            i_block, j_block = i_block[survives], j_block[survives]
            if i_block.size == 0:
                continue
            # Midpoint screen: one batched kernel call for the middle
            # sample of every pair; a midpoint outside the sphere
            # disconnects the pair without evaluating the other samples.
            middle = self._segment_samples // 2
            deltas = data[j_block] - data[i_block]
            midpoints = data[i_block] + fractions[middle] * deltas
            mid_inside = self.sphere_distance_sq(midpoints) <= radius_sq
            i_block, j_block = i_block[mid_inside], j_block[mid_inside]
            if i_block.size == 0:
                continue
            # Batched segment evaluation: every sampled point of every
            # surviving pair goes through one kernel call.
            deltas = data[j_block] - data[i_block]
            segments = (data[i_block][:, None, :]
                        + fractions[None, :, None] * deltas[:, None, :])
            distances = self.sphere_distance_sq(
                segments.reshape(-1, data.shape[1])
            )
            inside = np.all(
                distances.reshape(i_block.shape[0], -1) <= radius_sq, axis=1
            )
            for i, j in zip(i_block[inside], j_block[inside]):
                union(int(i), int(j))

        roots = np.array([find(i) for i in range(n_samples)])
        _, labels = np.unique(roots, return_inverse=True)
        return labels


def _chord(distance: np.ndarray, q: float) -> np.ndarray:
    """Feature-space distance between two inputs ``distance`` apart."""
    return np.sqrt(np.maximum(2.0 - 2.0 * np.exp(-q * distance ** 2), 0.0))


def _pairwise_sq(data: np.ndarray) -> np.ndarray:
    sq = np.sum(data * data, axis=1)
    return np.maximum(sq[:, None] + sq[None, :] - 2.0 * data @ data.T, 0.0)
