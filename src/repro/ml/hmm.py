"""Gaussian hidden Markov models — the HMM prediction baseline.

The paper's Section II-C lists "Markov Models [29], [8]" (Zhao et al.,
Eckart et al.) among the proposed disk-failure predictors.  This module
implements the standard machinery: a diagonal-covariance Gaussian HMM
trained with Baum-Welch (log-space forward-backward, so short noisy
SMART windows cannot underflow), and a two-model likelihood-ratio
detector — one HMM fit on healthy windows, one on pre-failure windows —
matching how the cited work frames the problem.

The forward/backward recursions are batched: sequences of equal length
are stacked into one (batch, time, states) array and each time step
advances every sequence with a single ``logsumexp`` over the transition
axis, so an EM step over hundreds of SMART windows costs ``max(T)``
numpy dispatches instead of ``sum(T)``.  EM statistics are still
accumulated per sequence in the original order, which keeps the fitted
parameters byte-identical to the one-sequence-at-a-time implementation.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

from repro.errors import ConvergenceError, ModelError

_VARIANCE_FLOOR = 1.0e-6
_LOG_FLOOR = -1.0e12


class GaussianHMM:
    """Diagonal-covariance Gaussian HMM trained with Baum-Welch.

    Parameters
    ----------
    n_states:
        Hidden-state count.
    n_iter:
        Baum-Welch iteration cap.
    tol:
        Convergence threshold on the mean per-observation log-likelihood
        improvement.
    seed:
        Initialization seed (means are seeded from perturbed data
        quantiles so states start distinct).
    """

    def __init__(self, n_states: int = 3, *, n_iter: int = 50,
                 tol: float = 1.0e-4, seed: int = 0) -> None:
        if n_states < 1:
            raise ModelError("n_states must be positive")
        if n_iter < 1:
            raise ModelError("n_iter must be positive")
        self._n_states = n_states
        self._n_iter = n_iter
        self._tol = tol
        self._seed = seed
        self.start_log_: np.ndarray | None = None       # (k,)
        self.transition_log_: np.ndarray | None = None  # (k, k)
        self.means_: np.ndarray | None = None           # (k, d)
        self.variances_: np.ndarray | None = None       # (k, d)

    @property
    def is_fitted(self) -> bool:
        return self.means_ is not None

    @property
    def n_states(self) -> int:
        return self._n_states

    # -- training ---------------------------------------------------------

    def fit(self, sequences: list[np.ndarray]) -> "GaussianHMM":
        sequences = [self._validated(seq) for seq in sequences]
        if not sequences:
            raise ModelError("fit needs at least one sequence")
        n_features = sequences[0].shape[1]
        if any(seq.shape[1] != n_features for seq in sequences):
            raise ModelError("sequences disagree on feature count")
        self._initialize(sequences, n_features)

        previous = -np.inf
        total_observations = sum(seq.shape[0] for seq in sequences)
        for _ in range(self._n_iter):
            log_likelihood = self._em_step(sequences)
            per_observation = log_likelihood / total_observations
            if per_observation - previous < self._tol:
                return self
            previous = per_observation
        # Baum-Welch increases likelihood monotonically; hitting the cap
        # just means diminishing returns, not failure.
        return self

    # -- scoring ------------------------------------------------------------

    def score(self, sequence: np.ndarray) -> float:
        """Total log-likelihood of one sequence under the model."""
        self._require_fitted()
        sequence = self._validated(sequence)
        log_alpha = self._forward(self._log_emissions(sequence))
        return float(logsumexp(log_alpha[-1]))

    def score_many(self, sequences: list[np.ndarray]) -> np.ndarray:
        """Total log-likelihoods of many sequences.

        Equal-length sequences share one batched forward pass; each value
        matches :meth:`score` of the same sequence exactly.
        """
        self._require_fitted()
        sequences = [self._validated(seq) for seq in sequences]
        scores = np.empty(len(sequences), dtype=np.float64)
        for indices, batch in self._length_groups(sequences):
            log_alpha = self._forward_batched(self._log_emissions_batched(batch))
            scores[indices] = logsumexp(log_alpha[:, -1], axis=1)
        return scores

    def score_per_observation(self, sequence: np.ndarray) -> float:
        """Length-normalized log-likelihood (comparable across windows)."""
        sequence = self._validated(sequence)
        return self.score(sequence) / sequence.shape[0]

    # -- internals -----------------------------------------------------------

    def _initialize(self, sequences: list[np.ndarray],
                    n_features: int) -> None:
        rng = np.random.default_rng(self._seed)
        stacked = np.vstack(sequences)
        quantiles = np.linspace(15.0, 85.0, self._n_states)
        means = np.percentile(stacked, quantiles, axis=0)
        spread = np.maximum(stacked.std(axis=0), 1.0e-3)
        means = means + rng.normal(0.0, 0.05, size=means.shape) * spread
        variances = np.tile(
            np.maximum(stacked.var(axis=0), _VARIANCE_FLOOR),
            (self._n_states, 1),
        )
        self.means_ = means
        self.variances_ = variances
        self.start_log_ = np.full(self._n_states,
                                  -np.log(self._n_states))
        transition = np.full((self._n_states, self._n_states),
                             0.1 / max(self._n_states - 1, 1))
        np.fill_diagonal(transition, 0.9)
        if self._n_states == 1:
            transition = np.ones((1, 1))
        self.transition_log_ = np.log(transition)

    def _em_step(self, sequences: list[np.ndarray]) -> float:
        assert (self.means_ is not None and self.variances_ is not None
                and self.start_log_ is not None
                and self.transition_log_ is not None)
        k = self._n_states
        d = self.means_.shape[1]
        start_acc = np.zeros(k)
        transition_acc = np.zeros((k, k))
        weight_acc = np.zeros(k)
        mean_acc = np.zeros((k, d))
        square_acc = np.zeros((k, d))
        total_log_likelihood = 0.0

        # E-step, batched by sequence length: every equal-length group
        # runs forward/backward as one (batch, time, states) recursion.
        n_sequences = len(sequences)
        log_likelihoods = np.empty(n_sequences, dtype=np.float64)
        gammas: list[np.ndarray | None] = [None] * n_sequences
        xi_sums: list[np.ndarray | None] = [None] * n_sequences
        for indices, batch in self._length_groups(sequences):
            log_b = self._log_emissions_batched(batch)
            log_alpha = self._forward_batched(log_b)
            log_beta = self._backward_batched(log_b)
            batch_ll = logsumexp(log_alpha[:, -1], axis=1)
            gamma = np.exp(log_alpha + log_beta - batch_ll[:, None, None])
            if batch.shape[1] > 1:
                # xi[b, t, i, j] in log space, summed over t.
                log_xi = (
                    log_alpha[:, :-1, :, None]
                    + self.transition_log_[None, None, :, :]
                    + log_b[:, 1:, None, :]
                    + log_beta[:, 1:, None, :]
                    - batch_ll[:, None, None, None]
                )
                xi = np.exp(logsumexp(log_xi, axis=1))
            for position, index in enumerate(indices):
                log_likelihoods[index] = batch_ll[position]
                gammas[index] = gamma[position]
                if batch.shape[1] > 1:
                    xi_sums[index] = xi[position]

        # Accumulate in the original sequence order so every floating-
        # point sum matches the sequential implementation exactly.
        for index, sequence in enumerate(sequences):
            gamma = gammas[index]
            assert gamma is not None
            total_log_likelihood += float(log_likelihoods[index])
            start_acc += gamma[0]
            weight_acc += gamma.sum(axis=0)
            mean_acc += gamma.T @ sequence
            square_acc += gamma.T @ (sequence ** 2)
            if xi_sums[index] is not None:
                transition_acc += xi_sums[index]

        start = start_acc / max(start_acc.sum(), 1.0e-300)
        self.start_log_ = np.log(np.maximum(start, 1.0e-300))
        row_sums = transition_acc.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            transition = np.where(row_sums > 0,
                                  transition_acc / row_sums,
                                  1.0 / k)
        self.transition_log_ = np.log(np.maximum(transition, 1.0e-300))
        weights = np.maximum(weight_acc, 1.0e-300)[:, None]
        self.means_ = mean_acc / weights
        self.variances_ = np.maximum(
            square_acc / weights - self.means_ ** 2, _VARIANCE_FLOOR
        )
        return total_log_likelihood

    def _log_emissions(self, sequence: np.ndarray) -> np.ndarray:
        return self._log_emissions_batched(sequence[None])[0]

    def _forward(self, log_b: np.ndarray) -> np.ndarray:
        return self._forward_batched(log_b[None])[0]

    def _backward(self, log_b: np.ndarray) -> np.ndarray:
        return self._backward_batched(log_b[None])[0]

    def _log_emissions_batched(self, batch: np.ndarray) -> np.ndarray:
        """Log emission densities for a (batch, time, features) stack."""
        assert self.means_ is not None and self.variances_ is not None
        deltas = batch[:, :, None, :] - self.means_[None, None, :, :]
        log_b = -0.5 * np.sum(
            deltas ** 2 / self.variances_[None, None, :, :]
            + np.log(2.0 * np.pi * self.variances_[None, None, :, :]),
            axis=3,
        )
        return np.maximum(log_b, _LOG_FLOOR)

    def _forward_batched(self, log_b: np.ndarray) -> np.ndarray:
        """Forward recursion over a (batch, time, states) stack.

        Each step advances every sequence in the batch with one
        ``logsumexp`` over the transition axis.
        """
        assert self.start_log_ is not None and self.transition_log_ is not None
        n_steps = log_b.shape[1]
        log_alpha = np.empty_like(log_b)
        log_alpha[:, 0] = self.start_log_ + log_b[:, 0]
        for t in range(1, n_steps):
            log_alpha[:, t] = log_b[:, t] + logsumexp(
                log_alpha[:, t - 1, :, None] + self.transition_log_[None, :, :],
                axis=1,
            )
        return log_alpha

    def _backward_batched(self, log_b: np.ndarray) -> np.ndarray:
        assert self.transition_log_ is not None
        n_steps = log_b.shape[1]
        log_beta = np.zeros_like(log_b)
        for t in range(n_steps - 2, -1, -1):
            log_beta[:, t] = logsumexp(
                self.transition_log_[None, :, :]
                + log_b[:, t + 1, None, :]
                + log_beta[:, t + 1, None, :],
                axis=2,
            )
        return log_beta

    @staticmethod
    def _length_groups(sequences: list[np.ndarray]):
        """Yield (original indices, stacked batch) per distinct length."""
        groups: dict[int, list[int]] = {}
        for index, sequence in enumerate(sequences):
            groups.setdefault(sequence.shape[0], []).append(index)
        for indices in groups.values():
            yield indices, np.stack([sequences[i] for i in indices])

    @staticmethod
    def _validated(sequence: np.ndarray) -> np.ndarray:
        sequence = np.asarray(sequence, dtype=np.float64)
        if sequence.ndim == 1:
            sequence = sequence.reshape(-1, 1)
        if sequence.ndim != 2 or sequence.shape[0] == 0:
            raise ModelError("sequences must be non-empty 2-D arrays")
        return sequence

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ModelError("GaussianHMM used before fit()")


class HMMDetector:
    """Two-model likelihood-ratio failure detector (Zhao et al. framing).

    One HMM models healthy observation windows, a second models
    pre-failure windows; a drive is flagged when the failed-model
    likelihood of its window beats the healthy-model likelihood by the
    configured margin (per observation, so window lengths cancel).
    """

    def __init__(self, *, n_states: int = 3, margin: float = 0.0,
                 seed: int = 0) -> None:
        self._margin = margin
        self._good_model = GaussianHMM(n_states, seed=seed)
        self._failed_model = GaussianHMM(n_states, seed=seed + 1)

    @property
    def is_fitted(self) -> bool:
        return self._good_model.is_fitted and self._failed_model.is_fitted

    def fit(self, good_windows: list[np.ndarray],
            failed_windows: list[np.ndarray]) -> "HMMDetector":
        if not good_windows or not failed_windows:
            raise ModelError("need both healthy and pre-failure windows")
        self._good_model.fit(good_windows)
        self._failed_model.fit(failed_windows)
        return self

    def log_likelihood_ratio(self, window: np.ndarray) -> float:
        """Per-observation log-likelihood ratio (failed minus healthy)."""
        if not self.is_fitted:
            raise ModelError("HMMDetector used before fit()")
        return (self._failed_model.score_per_observation(window)
                - self._good_model.score_per_observation(window))

    def flag(self, window: np.ndarray) -> bool:
        return self.log_likelihood_ratio(window) > self._margin

    def log_likelihood_ratio_many(self, windows: list[np.ndarray]) -> np.ndarray:
        """Per-observation log-likelihood ratios for many windows.

        Both models score the windows through their batched forward
        pass; each ratio matches :meth:`log_likelihood_ratio` exactly.
        """
        if not self.is_fitted:
            raise ModelError("HMMDetector used before fit()")
        windows = [GaussianHMM._validated(window) for window in windows]
        lengths = np.array([window.shape[0] for window in windows],
                           dtype=np.int64)
        failed = self._failed_model.score_many(windows)
        good = self._good_model.score_many(windows)
        return failed / lengths - good / lengths

    def flag_many(self, windows: list[np.ndarray]) -> np.ndarray:
        ratios = self.log_likelihood_ratio_many(windows)
        return np.asarray(ratios > self._margin, dtype=bool)


# Re-exported for symmetry with the other baselines.
__all__ = ["GaussianHMM", "HMMDetector", "ConvergenceError"]
