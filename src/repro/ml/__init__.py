"""Machine-learning substrate.

Everything the paper's pipeline needs — K-means and Support Vector
Clustering for failure categorization, PCA for the group visualization,
polynomial regression for signature fitting, a CART regression tree for
degradation prediction, distance measures, and the classical
failure-prediction baselines of Section II-C — implemented from scratch
on numpy/scipy (no scikit-learn dependency).
"""

from repro.ml.distance import (
    MahalanobisDistance,
    euclidean_distance,
    euclidean_to_reference,
)
from repro.ml.hmm import GaussianHMM, HMMDetector
from repro.ml.kmeans import ElbowAnalysis, KMeans, elbow_analysis
from repro.ml.knn import KNNRegressor
from repro.ml.linear import RidgeRegressor
from repro.ml.metrics import (
    cluster_purity,
    detection_rates,
    error_rate,
    r_squared,
    rand_index,
    rmse,
    silhouette_score,
)
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.pca import PCA
from repro.ml.polyfit import PolynomialFit, fit_polynomial
from repro.ml.ranksum import RankSumDetector
from repro.ml.svc import SupportVectorClustering
from repro.ml.threshold import ThresholdDetector
from repro.ml.tree import RegressionTree

__all__ = [
    "MahalanobisDistance",
    "euclidean_distance",
    "euclidean_to_reference",
    "ElbowAnalysis",
    "KMeans",
    "elbow_analysis",
    "GaussianHMM",
    "HMMDetector",
    "KNNRegressor",
    "RidgeRegressor",
    "cluster_purity",
    "detection_rates",
    "error_rate",
    "r_squared",
    "rand_index",
    "rmse",
    "silhouette_score",
    "GaussianNaiveBayes",
    "PCA",
    "PolynomialFit",
    "fit_polynomial",
    "RankSumDetector",
    "SupportVectorClustering",
    "ThresholdDetector",
    "RegressionTree",
]
