"""Rank-sum failure detection — the Hughes et al. (2002) baseline.

The multivariate-by-OR rank-sum test: for each monitored attribute, a
Wilcoxon rank-sum test compares a drive's recent samples against a
reference sample drawn from known-good drives; the drive is flagged when
*any* attribute rejects at the configured significance level ("OR-ed
single variate test").  Murray et al. later found this simple detector
the strongest of the classical methods, which is why the paper's related
work leads with it.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ModelError


class RankSumDetector:
    """OR-ed per-attribute Wilcoxon rank-sum detector.

    Healthy drives differ from a pooled reference for benign, static
    reasons (a drive that has always had a dozen reallocated sectors is
    not failing), and with tens of samples against thousands those
    identity shifts reach astronomical significance.  The detector
    therefore also requires a *material* shift: the drive's median must
    fall outside the reference's extreme quantile band before the
    attribute can vote to flag.

    Parameters
    ----------
    significance:
        Two-sided p-value threshold per attribute.  Lower values cut the
        false alarm rate at the cost of detection rate.
    band_quantile:
        Extreme-quantile band of the reference (per side); a drive's
        median must leave the band for the attribute to count.
    reference_size:
        Number of good-drive samples kept per attribute as the reference.
    """

    def __init__(self, *, significance: float = 1.0e-4,
                 band_quantile: float = 0.001,
                 reference_size: int = 2000, seed: int = 11) -> None:
        if not 0.0 < significance < 1.0:
            raise ModelError("significance must lie in (0, 1)")
        if not 0.0 <= band_quantile < 0.5:
            raise ModelError("band_quantile must lie in [0, 0.5)")
        if reference_size < 10:
            raise ModelError("reference_size must be at least 10")
        self._significance = significance
        self._band_quantile = band_quantile
        self._reference_size = reference_size
        self._seed = seed
        self._reference: np.ndarray | None = None  # (reference_size, n_attrs)
        self._band_low: np.ndarray | None = None
        self._band_high: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._reference is not None

    def fit(self, good_samples: np.ndarray) -> "RankSumDetector":
        """Store a reference sample of good-drive records."""
        good_samples = np.asarray(good_samples, dtype=np.float64)
        if good_samples.ndim != 2:
            raise ModelError("fit expects a 2-D matrix of good samples")
        if good_samples.shape[0] < 10:
            raise ModelError("need at least 10 good samples")
        rng = np.random.default_rng(self._seed)
        count = min(self._reference_size, good_samples.shape[0])
        rows = rng.choice(good_samples.shape[0], size=count, replace=False)
        self._reference = good_samples[rows]
        self._band_low = np.quantile(good_samples, self._band_quantile, axis=0)
        self._band_high = np.quantile(good_samples, 1.0 - self._band_quantile,
                                      axis=0)
        return self

    def attribute_p_values(self, drive_samples: np.ndarray) -> np.ndarray:
        """Two-sided rank-sum p-value per attribute for one drive."""
        if self._reference is None:
            raise ModelError("RankSumDetector used before fit()")
        drive_samples = np.asarray(drive_samples, dtype=np.float64)
        if drive_samples.ndim != 2:
            raise ModelError("expected a 2-D matrix of drive samples")
        if drive_samples.shape[1] != self._reference.shape[1]:
            raise ModelError("attribute count mismatch with the reference")
        p_values = np.empty(drive_samples.shape[1])
        for column in range(drive_samples.shape[1]):
            observed = drive_samples[:, column]
            reference = self._reference[:, column]
            if np.all(observed == observed[0]) and np.all(reference == observed[0]):
                p_values[column] = 1.0
                continue
            _, p_value = stats.ranksums(observed, reference)
            p_values[column] = p_value
        return p_values

    def flag(self, drive_samples: np.ndarray) -> bool:
        """OR-ed decision: flag when any attribute rejects materially."""
        p_values = self.attribute_p_values(drive_samples)
        assert self._band_low is not None and self._band_high is not None
        medians = np.median(np.asarray(drive_samples, dtype=np.float64),
                            axis=0)
        material = (medians < self._band_low) | (medians > self._band_high)
        return bool(np.any((p_values < self._significance) & material))

    def flag_many(self, drives: list[np.ndarray]) -> np.ndarray:
        """Vector of decisions for a list of per-drive sample matrices."""
        return np.array([self.flag(samples) for samples in drives], dtype=bool)
