"""CART regression tree for degradation prediction.

The paper's Section V-B trains a regression tree whose targets are the
degradation values produced by the signature models (1.0 for good-drive
samples) and reports RMSE / error rates per failure group (Table III) and
the Group 1 tree itself (Figure 13).

Splits minimize the within-node sum of squared errors (Equation 8): for
every feature and every threshold the sum of child SSEs is computed from
cumulative statistics over the sorted feature column.  The tree is grown
presorted (classic presort CART): every feature column is stable-sorted
once at the root and the sorted index lists are partitioned down the
tree, so finding the best split of a node is O(n_features * n) instead
of O(n_features * n log n) — no per-node argsort.  Because the stable
partition preserves the root ordering exactly (ties stay in original
index order, as a per-node stable sort would leave them), the fitted
tree is identical to the one the re-sorting implementation grew.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

# Below this many rows ``predict`` walks rows individually instead of
# descending in lock-step; the crossover sits where ``depth`` rounds of
# whole-batch array ops stop paying for themselves.
_WALK_THRESHOLD = 8


@dataclass(slots=True)
class TreeNode:
    """One node of a fitted regression tree.

    Leaves have ``feature_index is None``; internal nodes route samples
    with ``value < threshold`` to ``left`` and the rest to ``right``.
    """

    value: float
    n_samples: int
    sse: float
    feature_index: int | None = None
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature_index is None


class RegressionTree:
    """Binary regression tree grown by greedy SSE minimization.

    Parameters
    ----------
    max_depth:
        Depth cap (root is depth 0).
    min_samples_split:
        Nodes with fewer samples become leaves.
    min_samples_leaf:
        Candidate splits leaving fewer samples on a side are discarded.
    min_sse_decrease:
        Minimum absolute SSE improvement for a split to be kept; prunes
        splits that only chase noise.
    """

    def __init__(self, *, max_depth: int = 8, min_samples_split: int = 20,
                 min_samples_leaf: int = 10,
                 min_sse_decrease: float = 1.0e-7) -> None:
        if max_depth < 1:
            raise ModelError("max_depth must be at least 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ModelError("invalid minimum sample constraints")
        self._max_depth = max_depth
        self._min_samples_split = min_samples_split
        self._min_samples_leaf = min_samples_leaf
        self._min_sse_decrease = min_sse_decrease
        self.root_: TreeNode | None = None
        self.n_features_: int | None = None
        self.feature_names_: tuple[str, ...] | None = None
        self._flat_: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                           np.ndarray, int] | None = None
        self._flat_lists_: tuple[list, list, list, list, list] | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray,
            feature_names: tuple[str, ...] | list[str] | None = None) -> "RegressionTree":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or targets.ndim != 1:
            raise ModelError("fit expects a 2-D feature matrix and 1-D targets")
        if features.shape[0] != targets.shape[0]:
            raise ModelError("features and targets disagree on sample count")
        if features.shape[0] == 0:
            raise ModelError("cannot fit a tree on zero samples")
        if feature_names is not None and len(feature_names) != features.shape[1]:
            raise ModelError("feature_names length mismatch")
        self.n_features_ = features.shape[1]
        self.feature_names_ = tuple(feature_names) if feature_names else None
        # Presort once at the root: one stable argsort per feature.
        # ``_grow`` partitions these index lists instead of re-sorting.
        # The transposed copy makes every per-node column gather read
        # contiguous memory.
        sorted_indices = np.argsort(features, axis=0, kind="stable").T
        columns = np.ascontiguousarray(features.T)
        node_indices = np.arange(features.shape[0])
        self.root_ = self._grow(columns, targets, sorted_indices,
                                node_indices, depth=0)
        self._flat_ = None
        self._flat_lists_ = None
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.root_ is None or self.n_features_ is None:
            raise ModelError("RegressionTree used before fit()")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.shape[1] != self.n_features_:
            raise ModelError(
                f"expected {self.n_features_} features, got {features.shape[1]}"
            )
        # Route all rows down the tree in lock-step over a flattened node
        # table: depth iterations of gather/compare/select, no per-node
        # Python work.  Leaves self-loop (threshold +inf, both children
        # pointing back at the leaf), so every row can take exactly
        # ``depth`` steps and land on its leaf regardless of path length.
        # Each step applies the same strict ``value < threshold`` routing
        # as a node-by-node walk, so predictions are bit-identical.
        feature, threshold, left, right, value, depth = self._flattened()
        n_rows = features.shape[0]
        if n_rows == 0:
            return np.empty(0, dtype=np.float64)
        if n_rows <= _WALK_THRESHOLD:
            # Tiny batches: ``depth`` rounds of array ops cost more than
            # they save, so walk each row node by node over plain-list
            # mirrors of the same table (Python floats compare with the
            # same IEEE semantics, so routing is unchanged).
            feature_l, threshold_l, left_l, right_l, value_l = \
                self._flattened_lists()
            out = np.empty(n_rows, dtype=np.float64)
            inf = np.inf
            for row in range(n_rows):
                row_values = features[row].tolist()
                node = 0
                while threshold_l[node] != inf:
                    node = (left_l[node]
                            if row_values[feature_l[node]] < threshold_l[node]
                            else right_l[node])
                out[row] = value_l[node]
            return out
        nodes = np.zeros(n_rows, dtype=np.intp)
        rows = np.arange(n_rows)
        for _ in range(depth):
            goes_left = features[rows, feature[nodes]] < threshold[nodes]
            nodes = np.where(goes_left, left[nodes], right[nodes])
        return value[nodes]

    def depth(self) -> int:
        """Maximum depth of the fitted tree."""
        return self._depth_of(self._require_root())

    def n_leaves(self) -> int:
        return self._leaves_of(self._require_root())

    def feature_importances(self) -> np.ndarray:
        """SSE reduction attributed to each feature, normalized to sum 1."""
        root = self._require_root()
        assert self.n_features_ is not None
        importances = np.zeros(self.n_features_, dtype=np.float64)

        def visit(node: TreeNode) -> None:
            if node.is_leaf:
                return
            assert node.left is not None and node.right is not None
            gain = node.sse - node.left.sse - node.right.sse
            importances[node.feature_index] += max(gain, 0.0)
            visit(node.left)
            visit(node.right)

        visit(root)
        total = importances.sum()
        return importances / total if total > 0 else importances

    def export_text(self) -> str:
        """Render the tree in the style of the paper's Figure 13.

        Each node shows its mean target value and sample share; internal
        nodes show the split condition.
        """
        root = self._require_root()
        total = root.n_samples
        lines: list[str] = []

        def visit(node: TreeNode, indent: str) -> None:
            share = 100.0 * node.n_samples / total
            header = f"{node.value:+.2f}  {share:.0f}%"
            if node.is_leaf:
                lines.append(f"{indent}{header}")
                return
            name = (self.feature_names_[node.feature_index]
                    if self.feature_names_ else f"x{node.feature_index}")
            lines.append(f"{indent}{header}  [{name} < {node.threshold:.2f}]")
            assert node.left is not None and node.right is not None
            visit(node.left, indent + "  ")
            visit(node.right, indent + "  ")

        visit(root, "")
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Flatten the fitted tree into JSON-clean plain types.

        The payload round-trips exactly through :meth:`from_dict`:
        thresholds and leaf values are kept as Python floats (which JSON
        serializes via ``repr``, preserving every bit of the float64),
        so a deserialized tree predicts byte-identically to the
        original.  Growth parameters ride along so a restored tree also
        reports the same configuration.
        """
        root = self._require_root()
        assert self.n_features_ is not None

        def encode(node: TreeNode) -> dict:
            payload: dict = {
                "value": node.value,
                "n_samples": node.n_samples,
                "sse": node.sse,
            }
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                payload["feature_index"] = node.feature_index
                payload["threshold"] = node.threshold
                payload["left"] = encode(node.left)
                payload["right"] = encode(node.right)
            return payload

        return {
            "params": {
                "max_depth": self._max_depth,
                "min_samples_split": self._min_samples_split,
                "min_samples_leaf": self._min_samples_leaf,
                "min_sse_decrease": self._min_sse_decrease,
            },
            "n_features": self.n_features_,
            "feature_names": (list(self.feature_names_)
                              if self.feature_names_ is not None else None),
            "root": encode(root),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RegressionTree":
        """Reconstruct a fitted tree from a :meth:`to_dict` payload.

        Malformed payloads (missing keys, wrong types, an internal node
        without children) raise :class:`~repro.errors.ModelError` —
        never a half-built tree.
        """
        if not isinstance(payload, dict):
            raise ModelError("tree payload must be a mapping")
        try:
            params = payload["params"]
            n_features = int(payload["n_features"])
            names = payload["feature_names"]
            encoded_root = payload["root"]
            tree = cls(
                max_depth=int(params["max_depth"]),
                min_samples_split=int(params["min_samples_split"]),
                min_samples_leaf=int(params["min_samples_leaf"]),
                min_sse_decrease=float(params["min_sse_decrease"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ModelError(f"malformed tree payload: {error}") from error

        def decode(encoded: dict, depth: int) -> TreeNode:
            if not isinstance(encoded, dict):
                raise ModelError("tree node payload must be a mapping")
            if depth > tree._max_depth:
                raise ModelError("tree payload deeper than its max_depth")
            try:
                node = TreeNode(
                    value=float(encoded["value"]),
                    n_samples=int(encoded["n_samples"]),
                    sse=float(encoded["sse"]),
                )
            except (KeyError, TypeError, ValueError) as error:
                raise ModelError(
                    f"malformed tree node payload: {error}") from error
            if "feature_index" in encoded:
                try:
                    node.feature_index = int(encoded["feature_index"])
                    node.threshold = float(encoded["threshold"])
                    left = encoded["left"]
                    right = encoded["right"]
                except (KeyError, TypeError, ValueError) as error:
                    raise ModelError(
                        f"malformed tree split payload: {error}") from error
                if not 0 <= node.feature_index < n_features:
                    raise ModelError(
                        f"tree split references feature "
                        f"{node.feature_index} of {n_features}"
                    )
                node.left = decode(left, depth + 1)
                node.right = decode(right, depth + 1)
            return node

        tree.n_features_ = n_features
        tree.feature_names_ = tuple(names) if names is not None else None
        if (tree.feature_names_ is not None
                and len(tree.feature_names_) != n_features):
            raise ModelError("tree payload feature_names length mismatch")
        tree.root_ = decode(encoded_root, depth=0)
        tree._flat_ = None
        tree._flat_lists_ = None
        return tree

    # -- internals ---------------------------------------------------------

    def _flattened(self) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray, np.ndarray, int]:
        """Flatten the node graph into arrays for lock-step prediction.

        Built lazily on first predict after a fit/deserialize and cached;
        leaves are encoded with ``threshold = +inf`` and both child slots
        pointing at themselves so the descent loop needs no leaf mask.
        """
        if self._flat_ is not None:
            return self._flat_
        root = self._require_root()
        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []

        def visit(node: TreeNode) -> int:
            index = len(values)
            values.append(node.value)
            features.append(0)
            thresholds.append(np.inf)
            lefts.append(index)
            rights.append(index)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                features[index] = node.feature_index
                thresholds[index] = node.threshold
                lefts[index] = visit(node.left)
                rights[index] = visit(node.right)
            return index

        visit(root)
        self._flat_ = (
            np.asarray(features, dtype=np.intp),
            np.asarray(thresholds, dtype=np.float64),
            np.asarray(lefts, dtype=np.intp),
            np.asarray(rights, dtype=np.intp),
            np.asarray(values, dtype=np.float64),
            self._depth_of(root),
        )
        return self._flat_

    def _flattened_lists(self) -> tuple[list, list, list, list, list]:
        """Plain-list mirror of :meth:`_flattened` for the per-row walk.

        List indexing and Python-float comparison avoid the per-element
        numpy scalar overhead that dominates single-sample prediction.
        """
        if self._flat_lists_ is None:
            feature, threshold, left, right, value, _ = self._flattened()
            self._flat_lists_ = (feature.tolist(), threshold.tolist(),
                                 left.tolist(), right.tolist(),
                                 value.tolist())
        return self._flat_lists_

    def _grow(self, columns: np.ndarray, targets: np.ndarray,
              sorted_indices: np.ndarray, node_indices: np.ndarray,
              depth: int) -> TreeNode:
        """Grow one node.

        ``columns`` is the transposed feature matrix (n_features, n);
        ``node_indices`` holds the node's samples in original order (so
        mean/SSE accumulate exactly as they did over subset copies);
        ``sorted_indices`` is (n_features, n_node) — the same samples,
        per feature, in presorted order.
        """
        node_targets = targets[node_indices]
        node = TreeNode(
            value=float(node_targets.mean()),
            n_samples=node_targets.shape[0],
            sse=float(np.sum((node_targets - node_targets.mean()) ** 2)),
        )
        if (depth >= self._max_depth
                or node_targets.shape[0] < self._min_samples_split
                or node.sse <= 0.0):
            return node
        split = self._best_split(columns, targets, sorted_indices,
                                 node_targets)
        if split is None:
            return node
        feature_index, threshold, gain = split
        if gain < self._min_sse_decrease:
            return node
        mask = columns[feature_index][node_indices] < threshold
        left_indices = node_indices[mask]
        right_indices = node_indices[~mask]
        # Stable partition of every presorted list: a full-length
        # membership lookup keeps each side in presorted order.
        goes_left = np.zeros(columns.shape[1], dtype=bool)
        goes_left[left_indices] = True
        in_left = goes_left[sorted_indices]
        n_features = sorted_indices.shape[0]
        left_sorted = sorted_indices[in_left].reshape(
            n_features, left_indices.shape[0])
        right_sorted = sorted_indices[~in_left].reshape(
            n_features, right_indices.shape[0])
        node.feature_index = feature_index
        node.threshold = threshold
        node.left = self._grow(columns, targets, left_sorted,
                               left_indices, depth + 1)
        node.right = self._grow(columns, targets, right_sorted,
                                right_indices, depth + 1)
        return node

    def _best_split(self, columns: np.ndarray, targets: np.ndarray,
                    sorted_indices: np.ndarray,
                    node_targets: np.ndarray) -> tuple[int, float, float] | None:
        n_samples = node_targets.shape[0]
        parent_sse = float(np.sum((node_targets - node_targets.mean()) ** 2))
        best: tuple[int, float, float] | None = None
        best_children_sse = np.inf
        for feature_index in range(columns.shape[0]):
            order = sorted_indices[feature_index]
            sorted_values = columns[feature_index][order]
            sorted_targets = targets[order]
            # Candidate split positions: between distinct adjacent values,
            # respecting the per-leaf minimum.
            cumsum = np.cumsum(sorted_targets)
            cumsq = np.cumsum(sorted_targets ** 2)
            counts = np.arange(1, n_samples + 1, dtype=np.float64)
            left_sse = cumsq - cumsum ** 2 / counts
            right_sum = cumsum[-1] - cumsum
            right_sq = cumsq[-1] - cumsq
            right_counts = n_samples - counts
            with np.errstate(divide="ignore", invalid="ignore"):
                right_sse = right_sq - np.where(
                    right_counts > 0, right_sum ** 2 / right_counts, 0.0
                )
            children = left_sse[:-1] + right_sse[:-1]
            valid = (
                (sorted_values[:-1] != sorted_values[1:])
                & (counts[:-1] >= self._min_samples_leaf)
                & (right_counts[:-1] >= self._min_samples_leaf)
            )
            if not np.any(valid):
                continue
            children = np.where(valid, children, np.inf)
            position = int(np.argmin(children))
            if children[position] < best_children_sse:
                best_children_sse = float(children[position])
                threshold = float(
                    (sorted_values[position] + sorted_values[position + 1]) / 2.0
                )
                best = (feature_index, threshold,
                        parent_sse - best_children_sse)
        return best

    def _require_root(self) -> TreeNode:
        if self.root_ is None:
            raise ModelError("RegressionTree used before fit()")
        return self.root_

    def _depth_of(self, node: TreeNode) -> int:
        if node.is_leaf:
            return 0
        assert node.left is not None and node.right is not None
        return 1 + max(self._depth_of(node.left), self._depth_of(node.right))

    def _leaves_of(self, node: TreeNode) -> int:
        if node.is_leaf:
            return 1
        assert node.left is not None and node.right is not None
        return self._leaves_of(node.left) + self._leaves_of(node.right)
