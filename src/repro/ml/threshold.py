"""Vendor-style threshold detection — the in-drive SMART baseline.

Drive firmware flags an impending failure when any health value crosses
its conservative vendor threshold.  The paper cites manufacturers
estimating a 3-10% failure detection rate at ~0.1% false alarms for this
scheme; the benchmarks reproduce that who-wins ordering against the
statistical detectors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class ThresholdDetector:
    """Per-attribute lower-bound thresholds, OR-ed across attributes.

    Thresholds are set from good-drive data at a configurable quantile
    margin below the observed minimum — the conservative policy vendors
    use to keep false alarms near zero at the expense of detection rate.
    """

    def __init__(self, *, margin: float = 0.02) -> None:
        if margin < 0:
            raise ModelError("margin must be non-negative")
        self._margin = margin
        self._thresholds: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._thresholds is not None

    @property
    def thresholds(self) -> np.ndarray:
        if self._thresholds is None:
            raise ModelError("ThresholdDetector used before fit()")
        return self._thresholds.copy()

    @classmethod
    def conservative(cls, n_attributes: int,
                     cut: float = -0.5) -> "ThresholdDetector":
        """Fixed deep thresholds, the way vendors actually ship them.

        Firmware thresholds are set at design time far below any healthy
        operating point (the paper: FDR 3-10% at ~0.1% FAR, "the drive
        manufacturers set the thresholds conservatively").  ``cut`` is in
        the data's own units — for Eq. (1)-normalized data, ``-0.5`` sits
        three quarters of the way down the observed range.
        """
        detector = cls(margin=0.0)
        detector._thresholds = np.full(n_attributes, cut, dtype=np.float64)
        return detector

    def fit(self, good_samples: np.ndarray) -> "ThresholdDetector":
        """Set each attribute's threshold below the good-drive floor.

        The threshold sits ``margin`` (a fraction of the attribute's
        good-drive range) below the minimum value any good drive ever
        showed, so a good fleet re-scored against itself raises no alarm.
        """
        good_samples = np.asarray(good_samples, dtype=np.float64)
        if good_samples.ndim != 2 or good_samples.shape[0] == 0:
            raise ModelError("fit expects a non-empty 2-D matrix")
        minima = good_samples.min(axis=0)
        spans = good_samples.max(axis=0) - minima
        self._thresholds = minima - self._margin * np.maximum(spans, 1.0e-12)
        return self

    def flag_records(self, records: np.ndarray) -> np.ndarray:
        """Per-record decision: any attribute below its threshold."""
        if self._thresholds is None:
            raise ModelError("ThresholdDetector used before fit()")
        records = np.asarray(records, dtype=np.float64)
        if records.ndim == 1:
            records = records.reshape(1, -1)
        if records.shape[1] != self._thresholds.shape[0]:
            raise ModelError("attribute count mismatch with fitted thresholds")
        return np.any(records < self._thresholds, axis=1)

    def flag_drive(self, profile_matrix: np.ndarray) -> bool:
        """Drive-level decision: any record trips any threshold."""
        return bool(np.any(self.flag_records(profile_matrix)))
