"""Gaussian naive Bayes — the Bayesian baseline of Section II-C.

Hamerly & Elkan (2001) predicted disk failures with Bayesian approaches;
this classifier is the library's stand-in baseline for the comparison
benchmarks: class-conditional independent Gaussians over SMART features
with a decision threshold on the posterior odds, so the FDR/FAR trade-off
can be swept.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

_MIN_VARIANCE = 1.0e-9


class GaussianNaiveBayes:
    """Binary Gaussian naive Bayes with an adjustable odds threshold."""

    def __init__(self) -> None:
        self._means: np.ndarray | None = None       # (2, n_features)
        self._variances: np.ndarray | None = None   # (2, n_features)
        self._log_priors: np.ndarray | None = None  # (2,)

    @property
    def is_fitted(self) -> bool:
        return self._means is not None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GaussianNaiveBayes":
        """Fit class-conditional Gaussians; labels are booleans (failed)."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=bool)
        if features.ndim != 2 or labels.ndim != 1:
            raise ModelError("fit expects a 2-D matrix and 1-D labels")
        if features.shape[0] != labels.shape[0]:
            raise ModelError("features and labels disagree on sample count")
        if not (np.any(labels) and np.any(~labels)):
            raise ModelError("need samples of both classes")
        means, variances, priors = [], [], []
        for positive in (False, True):
            members = features[labels == positive]
            means.append(members.mean(axis=0))
            variances.append(np.maximum(members.var(axis=0), _MIN_VARIANCE))
            priors.append(members.shape[0] / features.shape[0])
        self._means = np.vstack(means)
        self._variances = np.vstack(variances)
        self._log_priors = np.log(np.asarray(priors))
        return self

    def log_odds(self, features: np.ndarray) -> np.ndarray:
        """Log posterior odds of the positive (failed) class per row."""
        if self._means is None:
            raise ModelError("GaussianNaiveBayes used before fit()")
        assert self._variances is not None and self._log_priors is not None
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        scores = np.empty((features.shape[0], 2))
        for index in range(2):
            deltas = features - self._means[index]
            scores[:, index] = self._log_priors[index] - 0.5 * np.sum(
                deltas ** 2 / self._variances[index]
                + np.log(2.0 * np.pi * self._variances[index]),
                axis=1,
            )
        return scores[:, 1] - scores[:, 0]

    def predict(self, features: np.ndarray, *, threshold: float = 0.0) -> np.ndarray:
        """Flag rows whose log odds exceed ``threshold``.

        Raising the threshold trades detection rate for fewer false
        alarms, mirroring how the baseline papers tune FAR.
        """
        return self.log_odds(features) > threshold
