#!/usr/bin/env python
"""Lint: library code must log, not print.

Walks ``src/repro`` and flags every call to the ``print`` builtin
outside the allowlisted operator-facing modules (the two CLI entry
points and the rendering layer).  Docstrings mentioning ``print`` are
fine — the check is AST-based, so only real calls count.

Run from the repository root::

   python scripts/check_no_print.py

Exits 1 listing ``path:line`` for each violation, 0 when clean.  The
test suite runs this as a regression gate (``tests/test_no_print_lint.py``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Paths (relative to ``src/repro``) where printing is the module's job:
#: the CLI entry points and the ASCII-rendering layer.
ALLOWED_PREFIXES = (
    "cli.py",
    "serve/cli.py",
    "learn/cli.py",
    "reporting/",
    "experiments/registry.py",
    "experiments/__main__.py",
)


def find_print_calls(path: Path) -> list[int]:
    """Line numbers of ``print(...)`` calls in one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT).as_posix()
        if relative.startswith(ALLOWED_PREFIXES):
            continue
        for line in find_print_calls(path):
            violations.append(f"src/repro/{relative}:{line}")
    if violations:
        print("bare print() calls found — use repro.obs.logging instead:",
              file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
