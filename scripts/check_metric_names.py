#!/usr/bin/env python
"""Lint: every emitted metric name is snake_case and documented.

Walks ``src/repro`` for metric-emitting calls — ``.counter(...)``,
``.gauge(...)``, ``.histogram(...)`` on registries and ``.count(...)``,
``.observe(...)`` on observers — whose first argument is a string
literal, and checks each name against two rules:

* the name matches ``^[a-z][a-z0-9_]*$`` (lower snake_case, so the
  Prometheus exposition never has to mangle it);
* the name appears in the metric reference table of
  ``docs/observability.md`` — an operator reading a scrape must be able
  to look every series up.

Dynamically-built names (non-literal first arguments) are skipped: the
lint gates the declared vocabulary, not string plumbing.

Run from the repository root::

   python scripts/check_metric_names.py

Exits 1 listing ``path:line: name (reason)`` for each violation, 0 when
clean.  The test suite runs this as a regression gate
(``tests/test_metric_names_lint.py``).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
DOC_PATH = REPO_ROOT / "docs" / "observability.md"

#: Attribute calls that declare a metric name in their first argument.
METRIC_METHODS = frozenset({"counter", "gauge", "histogram",
                            "count", "observe"})

#: The snake_case contract metric names must satisfy.
NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*$")


def find_metric_names(path: Path) -> list[tuple[int, str]]:
    """``(line, name)`` for every literal metric name in one file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in METRIC_METHODS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            found.append((node.lineno, node.args[0].value))
    return sorted(found)


def documented_names(doc_path: Path = DOC_PATH) -> frozenset[str]:
    """Backticked identifiers mentioned in the observability doc."""
    if not doc_path.exists():
        return frozenset()
    return frozenset(re.findall(r"`([a-z][a-z0-9_]*)`",
                                doc_path.read_text()))


def violations(src_root: Path = SRC_ROOT,
               doc_path: Path = DOC_PATH) -> list[str]:
    """Every ``path:line: name (reason)`` the lint objects to."""
    documented = documented_names(doc_path)
    problems = []
    for path in sorted(src_root.rglob("*.py")):
        relative = path.relative_to(src_root.parent.parent).as_posix()
        for line, name in find_metric_names(path):
            if not NAME_PATTERN.match(name):
                problems.append(
                    f"{relative}:{line}: {name!r} (not snake_case)")
            elif name not in documented:
                problems.append(
                    f"{relative}:{line}: {name!r} "
                    f"(not documented in docs/observability.md)")
    return problems


def main() -> int:
    problems = violations()
    if problems:
        print("metric name violations — every emitted name must be "
              "snake_case and listed in docs/observability.md:",
              file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
