#!/usr/bin/env python
"""Lint: the docs must track the code — modules, subcommands, flags, links.

Four checks:

1. Walks ``src/repro`` and collects the dotted name of every public
   module — packages (directories with an ``__init__.py``) and
   non-underscore ``.py`` files — then checks that each name appears
   verbatim somewhere in ``docs/api.md``.  Modules whose file name
   starts with ``_`` are implementation details and exempt.
2. Parses ``src/repro/serve/cli.py`` for ``add_parser("name", ...)``
   calls and checks that every ``repro-serve`` subcommand is documented
   as ``repro-serve <name>`` in ``docs/api.md``, so a new subcommand
   cannot ship without its CLI grammar entry.
3. Parses every CLI module (``repro-characterize``, ``repro-serve``,
   ``repro-learn``) for ``add_argument("--flag", ...)`` calls and
   checks that each long option is mentioned verbatim somewhere under
   ``docs/`` — a flag you can pass but cannot read about is docs
   drift.
4. Resolves every relative ``](...)`` link inside ``docs/*.md`` (and
   ``README.md``) against the file that contains it, so a renamed or
   deleted target cannot leave a dead link behind.

Run from the repository root::

   python scripts/check_docs_refs.py

Exits 1 listing each missing item, 0 when clean.  The test suite runs
this as a regression gate (``tests/test_docs_refs_lint.py``).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
DOCS_ROOT = REPO_ROOT / "docs"
API_DOC = DOCS_ROOT / "api.md"
SERVE_CLI = SRC_ROOT / "serve" / "cli.py"

#: Every console-script entry point whose flag surface the docs must
#: cover, as (program name, parser module path) pairs.
CLI_MODULES: tuple[tuple[str, Path], ...] = (
    ("repro-characterize", SRC_ROOT / "cli.py"),
    ("repro-serve", SRC_ROOT / "serve" / "cli.py"),
    ("repro-learn", SRC_ROOT / "learn" / "cli.py"),
)

#: Markdown inline link targets: ``[text](target)``.  Good enough for
#: these docs — no reference-style links are used.
_LINK_PATTERN = re.compile(r"\]\(([^)\s]+)\)")


def public_modules(src_root: Path = SRC_ROOT) -> list[str]:
    """Dotted names of every public module under ``src_root``.

    The root package itself is excluded (documenting ``repro`` says
    nothing); subpackages count once, via their ``__init__.py``.
    """
    names: set[str] = set()
    for path in src_root.rglob("*.py"):
        relative = path.relative_to(src_root)
        if any(part.startswith("_") and part != "__init__.py"
               for part in relative.parts):
            continue
        if relative.name == "__init__.py":
            parts = relative.parts[:-1]
            if not parts:  # the repro/__init__.py root package
                continue
        else:
            parts = relative.parts[:-1] + (relative.stem,)
        names.add(".".join(("repro",) + parts))
    return sorted(names)


def undocumented_modules(doc_path: Path = API_DOC) -> list[str]:
    """Public modules whose dotted name never appears in the API doc."""
    try:
        text = doc_path.read_text()
    except OSError:
        return public_modules()
    return [name for name in public_modules() if name not in text]


def serve_cli_subcommands(cli_path: Path = SERVE_CLI) -> list[str]:
    """Subcommand names registered by ``repro-serve``'s parser.

    Found syntactically: every ``<x>.add_parser("name", ...)`` call
    with a literal first argument inside the CLI module.
    """
    tree = ast.parse(cli_path.read_text(), filename=str(cli_path))
    names: set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_parser"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            names.add(node.args[0].value)
    return sorted(names)


def undocumented_subcommands(doc_path: Path = API_DOC) -> list[str]:
    """``repro-serve`` subcommands never named in the API doc."""
    try:
        text = doc_path.read_text()
    except OSError:
        return serve_cli_subcommands()
    return [name for name in serve_cli_subcommands()
            if f"repro-serve {name}" not in text]


def cli_flags(cli_modules: tuple[tuple[str, Path], ...] = CLI_MODULES,
              ) -> list[tuple[str, str]]:
    """Every long option each CLI registers, as (program, flag) pairs.

    Found syntactically: ``add_argument`` calls whose first literal
    string argument starts with ``--`` (short aliases like ``-v`` ride
    along with their long form and are exempt on their own).
    """
    flags: set[tuple[str, str]] = set()
    for program, path in cli_modules:
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_argument"):
                continue
            for arg in node.args:
                if (isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        and arg.value.startswith("--")):
                    flags.add((program, arg.value))
    return sorted(flags)


def _docs_corpus(docs_root: Path = DOCS_ROOT) -> str:
    """All documentation text the flag check searches, concatenated."""
    parts = [path.read_text() for path in sorted(docs_root.glob("*.md"))]
    readme = docs_root.parent / "README.md"
    if readme.exists():
        parts.append(readme.read_text())
    return "\n".join(parts)


def undocumented_flags(docs_root: Path = DOCS_ROOT,
                       cli_modules: tuple[tuple[str, Path], ...]
                       = CLI_MODULES) -> list[tuple[str, str]]:
    """CLI long options never mentioned anywhere under ``docs/``."""
    corpus = _docs_corpus(docs_root)
    return [(program, flag) for program, flag in cli_flags(cli_modules)
            if flag not in corpus]


def broken_doc_links(docs_root: Path = DOCS_ROOT) -> list[tuple[str, str]]:
    """Relative markdown links that do not resolve, as (file, target).

    Checks every ``](...)`` target in ``docs/*.md`` and the repository
    ``README.md``.  External schemes (``http(s)://``, ``mailto:``) and
    in-page anchors (``#...``) are skipped; a ``path#fragment`` target
    is checked by path only.
    """
    broken: list[tuple[str, str]] = []
    pages = sorted(docs_root.glob("*.md"))
    readme = docs_root.parent / "README.md"
    if readme.exists():
        pages.append(readme)
    for page in pages:
        for target in _LINK_PATTERN.findall(page.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (page.parent / path).exists():
                try:
                    shown = str(page.relative_to(REPO_ROOT))
                except ValueError:  # a docs tree outside the repo (tests)
                    shown = str(page)
                broken.append((shown, target))
    return broken


def main() -> int:
    status = 0
    missing = undocumented_modules()
    if missing:
        print("public modules missing from docs/api.md:", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        status = 1
    commands = undocumented_subcommands()
    if commands:
        print("repro-serve subcommands missing from docs/api.md "
              "(document as 'repro-serve <name>'):", file=sys.stderr)
        for name in commands:
            print(f"  {name}", file=sys.stderr)
        status = 1
    flags = undocumented_flags()
    if flags:
        print("CLI flags never mentioned anywhere under docs/:",
              file=sys.stderr)
        for program, flag in flags:
            print(f"  {program} {flag}", file=sys.stderr)
        status = 1
    links = broken_doc_links()
    if links:
        print("broken relative links in the docs:", file=sys.stderr)
        for page, target in links:
            print(f"  {page}: ]({target})", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
