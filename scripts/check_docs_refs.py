#!/usr/bin/env python
"""Lint: every public module must be indexed in ``docs/api.md``.

Walks ``src/repro`` and collects the dotted name of every public module
— packages (directories with an ``__init__.py``) and non-underscore
``.py`` files — then checks that each name appears verbatim somewhere
in ``docs/api.md``.  Modules whose file name starts with ``_`` are
implementation details and exempt.

Run from the repository root::

   python scripts/check_docs_refs.py

Exits 1 listing each undocumented module, 0 when clean.  The test suite
runs this as a regression gate (``tests/test_docs_refs_lint.py``), so a
new module cannot ship without at least an API-index entry.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
API_DOC = REPO_ROOT / "docs" / "api.md"


def public_modules(src_root: Path = SRC_ROOT) -> list[str]:
    """Dotted names of every public module under ``src_root``.

    The root package itself is excluded (documenting ``repro`` says
    nothing); subpackages count once, via their ``__init__.py``.
    """
    names: set[str] = set()
    for path in src_root.rglob("*.py"):
        relative = path.relative_to(src_root)
        if any(part.startswith("_") and part != "__init__.py"
               for part in relative.parts):
            continue
        if relative.name == "__init__.py":
            parts = relative.parts[:-1]
            if not parts:  # the repro/__init__.py root package
                continue
        else:
            parts = relative.parts[:-1] + (relative.stem,)
        names.add(".".join(("repro",) + parts))
    return sorted(names)


def undocumented_modules(doc_path: Path = API_DOC) -> list[str]:
    """Public modules whose dotted name never appears in the API doc."""
    try:
        text = doc_path.read_text()
    except OSError:
        return public_modules()
    return [name for name in public_modules() if name not in text]


def main() -> int:
    missing = undocumented_modules()
    if missing:
        print("public modules missing from docs/api.md:", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
