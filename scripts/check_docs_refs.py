#!/usr/bin/env python
"""Lint: the API doc must cover every public module and CLI subcommand.

Two checks, both against ``docs/api.md``:

1. Walks ``src/repro`` and collects the dotted name of every public
   module — packages (directories with an ``__init__.py``) and
   non-underscore ``.py`` files — then checks that each name appears
   verbatim somewhere in the doc.  Modules whose file name starts with
   ``_`` are implementation details and exempt.
2. Parses ``src/repro/serve/cli.py`` for ``add_parser("name", ...)``
   calls and checks that every ``repro-serve`` subcommand is documented
   as ``repro-serve <name>`` in the doc, so a new subcommand cannot
   ship without its CLI grammar entry.

Run from the repository root::

   python scripts/check_docs_refs.py

Exits 1 listing each missing item, 0 when clean.  The test suite runs
this as a regression gate (``tests/test_docs_refs_lint.py``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
API_DOC = REPO_ROOT / "docs" / "api.md"
SERVE_CLI = SRC_ROOT / "serve" / "cli.py"


def public_modules(src_root: Path = SRC_ROOT) -> list[str]:
    """Dotted names of every public module under ``src_root``.

    The root package itself is excluded (documenting ``repro`` says
    nothing); subpackages count once, via their ``__init__.py``.
    """
    names: set[str] = set()
    for path in src_root.rglob("*.py"):
        relative = path.relative_to(src_root)
        if any(part.startswith("_") and part != "__init__.py"
               for part in relative.parts):
            continue
        if relative.name == "__init__.py":
            parts = relative.parts[:-1]
            if not parts:  # the repro/__init__.py root package
                continue
        else:
            parts = relative.parts[:-1] + (relative.stem,)
        names.add(".".join(("repro",) + parts))
    return sorted(names)


def undocumented_modules(doc_path: Path = API_DOC) -> list[str]:
    """Public modules whose dotted name never appears in the API doc."""
    try:
        text = doc_path.read_text()
    except OSError:
        return public_modules()
    return [name for name in public_modules() if name not in text]


def serve_cli_subcommands(cli_path: Path = SERVE_CLI) -> list[str]:
    """Subcommand names registered by ``repro-serve``'s parser.

    Found syntactically: every ``<x>.add_parser("name", ...)`` call
    with a literal first argument inside the CLI module.
    """
    tree = ast.parse(cli_path.read_text(), filename=str(cli_path))
    names: set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_parser"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            names.add(node.args[0].value)
    return sorted(names)


def undocumented_subcommands(doc_path: Path = API_DOC) -> list[str]:
    """``repro-serve`` subcommands never named in the API doc."""
    try:
        text = doc_path.read_text()
    except OSError:
        return serve_cli_subcommands()
    return [name for name in serve_cli_subcommands()
            if f"repro-serve {name}" not in text]


def main() -> int:
    status = 0
    missing = undocumented_modules()
    if missing:
        print("public modules missing from docs/api.md:", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        status = 1
    commands = undocumented_subcommands()
    if commands:
        print("repro-serve subcommands missing from docs/api.md "
              "(document as 'repro-serve <name>'):", file=sys.stderr)
        for name in commands:
            print(f"  {name}", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
