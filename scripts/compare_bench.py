#!/usr/bin/env python
"""Diff two benchmark JSON files and fail on speedup regressions.

The benchmark harness records before/after comparisons as nested JSON
(``benchmarks/output/perf_ml.json``, ``perf_serve.json``,
``perf_daemon.json``, ``perf_columnar.json``, ...).  Two kinds of keys
are *pinned*:

- keys named ``speedup`` — machine-relative ratios, so a committed
  baseline from one host is comparable to a fresh run on another;
- numeric keys ending ``samples_per_s`` — serving-plane throughputs
  (including dict-valued ones like ``sharded_samples_per_s`` whose
  numeric leaves are pinned individually).  These move with the
  hardware, so only compare recordings stamped with the same
  ``environment`` block.

This script walks both files, matches pinned metrics by dotted path,
and exits non-zero when any candidate value falls more than
``--threshold`` (default 20%) below its baseline, or when a baseline
metric disappeared.

Run from the repository root::

   python scripts/compare_bench.py benchmarks/output/perf_ml.json \
       /tmp/fresh_perf_ml.json

Raw ``*_s`` wall-clock values are ignored: they move with the hardware,
the ratios should not.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterator

#: A pinned metric is any key with this exact name or ending with this
#: suffix; everything else in the payloads (wall-clock seconds,
#: environment, notes) is context.
PINNED_KEY = "speedup"
PINNED_SUFFIX = "samples_per_s"


def pinned_metrics(payload: Any, prefix: str = "",
                   pinned: bool = False) -> Iterator[tuple[str, float]]:
    """Yield (dotted path, value) for every pinned metric in ``payload``.

    A pinned key with a dict value (e.g. ``sharded_samples_per_s``
    keyed by shard count) pins each numeric leaf underneath it.
    """
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            yield from pinned_metrics(
                value, path,
                pinned or key == PINNED_KEY or key.endswith(PINNED_SUFFIX))
    elif (pinned and isinstance(payload, (int, float))
          and not isinstance(payload, bool)):
        yield prefix, float(payload)


def _fmt(path: str, value: float) -> str:
    """Render a pinned value with its unit (ratio ``x`` vs samples/s)."""
    if PINNED_SUFFIX in path:
        return f"{value:,.0f}"
    return f"{value:.2f}x"


def compare(baseline: dict, candidate: dict,
            threshold: float) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines) for the two payloads."""
    candidate_metrics = dict(pinned_metrics(candidate))
    lines: list[str] = []
    failures: list[str] = []
    for path, base_value in pinned_metrics(baseline):
        cand_value = candidate_metrics.get(path)
        if cand_value is None:
            failures.append(f"{path}: missing from candidate")
            continue
        change = (cand_value - base_value) / base_value
        verdict = "ok"
        if change < -threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{path}: {_fmt(path, base_value)} -> "
                f"{_fmt(path, cand_value)} "
                f"({change:+.1%}, allowed -{threshold:.0%})"
            )
        lines.append(f"{path:45s} {_fmt(path, base_value):>12s} "
                     f"{_fmt(path, cand_value):>12s} "
                     f"{change:+8.1%}  {verdict}")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare pinned speedup metrics of two bench JSON files."
    )
    parser.add_argument("baseline", type=Path, help="reference bench JSON")
    parser.add_argument("candidate", type=Path, help="bench JSON under test")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="allowed fractional drop per metric "
                             "(default 0.2 = 20%%)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        print("threshold must lie in [0, 1)", file=sys.stderr)
        return 2

    try:
        baseline = json.loads(args.baseline.read_text())
        candidate = json.loads(args.candidate.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot load bench files: {error}", file=sys.stderr)
        return 2

    lines, failures = compare(baseline, candidate, args.threshold)
    if not lines and not failures:
        print("no pinned metrics found in baseline", file=sys.stderr)
        return 2
    header = f"{'metric':45s} {'baseline':>12s} {'candidate':>12s} {'change':>8s}"
    print(header)
    for line in lines:
        print(line)
    if failures:
        print()
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
