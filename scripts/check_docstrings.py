#!/usr/bin/env python
"""Lint: the public API surface must be documented where it is defined.

Walks ``src/repro`` and flags every module, top-level public class and
top-level public function that has no docstring.  Private names
(leading underscore) and nested/method definitions are out of scope —
the gate protects the surface a reader meets first, without legislating
every helper.  The check is AST-based; nothing is imported.

Run from the repository root::

   python scripts/check_docstrings.py

Exits 1 listing ``path:line: kind name`` for each violation, 0 when
clean.  The test suite runs this as a regression gate
(``tests/test_docstrings_lint.py``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Paths (relative to ``src/repro``) exempt from the docstring gate:
#: ``ml/_reference.py`` holds optional scikit-learn cross-checks whose
#: API mirrors (and is documented by) the real implementations.
ALLOWED_PREFIXES = (
    "ml/_reference.py",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def missing_docstrings(path: Path) -> list[tuple[int, str, str]]:
    """``(line, kind, name)`` for each undocumented public definition.

    Covers the module itself plus its top-level public classes and
    functions — the definitions a reader of the file sees first.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    found: list[tuple[int, str, str]] = []
    if ast.get_docstring(tree) is None:
        found.append((1, "module", path.stem))
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                found.append((node.lineno, "class", node.name))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and _is_public(node.name):
            if ast.get_docstring(node) is None:
                found.append((node.lineno, "function", node.name))
    return found


def collect_violations(root: Path = SRC_ROOT) -> list[str]:
    """All violations under ``root`` as ``path:line: kind name`` lines."""
    violations: list[str] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative.startswith(ALLOWED_PREFIXES):
            continue
        for line, kind, name in missing_docstrings(path):
            violations.append(f"src/repro/{relative}:{line}: {kind} {name}")
    return violations


def main() -> int:
    violations = collect_violations()
    if violations:
        print("public definitions without docstrings:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
