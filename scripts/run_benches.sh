#!/usr/bin/env sh
# Run every tier-2 perf bench and diff the fresh recordings against the
# committed baselines with scripts/compare_bench.py.
#
# Usage, from the repository root:
#
#   sh scripts/run_benches.sh            # all perf benches + regression diff
#   sh scripts/run_benches.sh --no-diff  # record only, skip the differ
#
# Fresh recordings land in benchmarks/output/perf_*.json.  The differ
# compares each against its git-committed counterpart (the baseline of
# record), so run this before committing updated numbers: a clean run
# means every pinned speedup and samples/s throughput is within the 20%
# allowance of the baseline.
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

PERF_BENCHES="
benchmarks/test_ml_microbench.py
benchmarks/test_pipeline_end_to_end.py
benchmarks/test_perf_obs.py
benchmarks/test_perf_serve.py
benchmarks/test_perf_daemon.py
benchmarks/test_perf_columnar.py
benchmarks/test_perf_wal.py
benchmarks/test_perf_learn.py
benchmarks/test_chaos_serve.py
benchmarks/test_compare_bench.py
"

# shellcheck disable=SC2086  # word splitting of the file list is wanted
python -m pytest $PERF_BENCHES -q -m tier2

[ "${1:-}" = "--no-diff" ] && exit 0

status=0
for fresh in benchmarks/output/perf_*.json; do
    if git cat-file -e "HEAD:$fresh" 2>/dev/null; then
        echo "== compare_bench: $fresh vs HEAD"
        git show "HEAD:$fresh" > "${fresh}.baseline"
        python scripts/compare_bench.py "${fresh}.baseline" "$fresh" \
            || status=1
        rm -f "${fresh}.baseline"
    else
        echo "== compare_bench: $fresh has no committed baseline, skipping"
    fi
done
exit "$status"
