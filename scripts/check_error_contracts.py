#!/usr/bin/env python
"""Lint: library errors are typed, never swallowed blind.

Walks ``src/repro`` and flags three anti-patterns that would erode the
error contract documented in :mod:`repro.errors`:

1. **Bare handlers** — ``except:`` catches ``KeyboardInterrupt`` and
   ``SystemExit`` too; there is never a reason for it in library code.
2. **Silent broad handlers** — ``except Exception: pass`` (or ``...``)
   makes failures invisible; a broad handler must *do* something with
   the error (wrap it, log it, count it).
3. **Builtin raises** — ``raise ValueError(...)`` and friends leak
   untyped errors to callers who were promised that every library
   failure derives from :class:`~repro.errors.ReproError`.  Re-raises
   (bare ``raise``) and raising names imported from ``repro.errors``
   are of course fine; the check is purely syntactic, so it flags only
   builtin exception names.

Run from the repository root::

   python scripts/check_error_contracts.py

Exits 1 listing ``path:line: reason`` for each violation, 0 when clean.
The test suite runs this as a regression gate
(``tests/test_error_contracts_lint.py``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Builtin exception types library code must not raise — callers are
#: promised ReproError subclasses.  SystemExit (CLI entry points) and
#: NotImplementedError (abstract seams) stay legal.
DISALLOWED_RAISES = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError",
    "RuntimeError", "KeyError", "IndexError", "LookupError",
    "ArithmeticError", "ZeroDivisionError", "OSError", "IOError",
    "StopIteration", "AssertionError",
})


def _is_silent(body: list[ast.stmt]) -> bool:
    """A handler body that discards the error without acting on it."""
    return all(
        isinstance(statement, ast.Pass)
        or (isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis)
        for statement in body
    )


def _raised_name(node: ast.Raise) -> str | None:
    """The plain name being raised, e.g. ``ValueError`` for both
    ``raise ValueError`` and ``raise ValueError(...)``."""
    target = node.exc
    if isinstance(target, ast.Call):
        target = target.func
    if isinstance(target, ast.Name):
        return target.id
    return None


def find_violations(path: Path) -> list[tuple[int, str]]:
    """(line, reason) pairs for one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    violations: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                violations.append(
                    (node.lineno, "bare 'except:' — name the exception"))
            elif (isinstance(node.type, ast.Name)
                  and node.type.id in ("Exception", "BaseException")
                  and _is_silent(node.body)):
                violations.append(
                    (node.lineno,
                     f"'except {node.type.id}: pass' swallows every "
                     "failure silently"))
        elif isinstance(node, ast.Raise):
            name = _raised_name(node)
            if name in DISALLOWED_RAISES:
                violations.append(
                    (node.lineno,
                     f"raises builtin {name} — use a "
                     "repro.errors.ReproError subclass"))
    return sorted(violations)


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT).as_posix()
        for line, reason in find_violations(path):
            violations.append(f"src/repro/{relative}:{line}: {reason}")
    if violations:
        print("error-contract violations found:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
